//! A minimal, dependency-free JSON value and writer.
//!
//! The reproduction binaries archive their results as JSON under
//! `repro_results/`; the build environment has no registry access, so
//! `serde`/`serde_json` cannot be dependencies. This crate provides the
//! small surface the workspace needs instead:
//!
//! * [`Json`] — an owned JSON value with [`Json::pretty`] /
//!   [`Json::compact`] writers (exact integers, shortest-round-trip
//!   floats, correct string escaping);
//! * [`ToJson`] — the serialization trait, implemented for the
//!   primitives, strings, options, vectors, slices and small tuples the
//!   result types use;
//! * [`impl_to_json!`] — a declarative derive for named-field structs.
//!
//! # Example
//!
//! ```
//! use mqx_json::{impl_to_json, Json, ToJson};
//!
//! struct Row {
//!     tier: String,
//!     ns: f64,
//! }
//! impl_to_json!(Row { tier, ns });
//!
//! let row = Row { tier: "avx512".into(), ns: 1.5 };
//! assert_eq!(row.to_json().compact(), r#"{"tier":"avx512","ns":1.5}"#);
//! assert_eq!(Json::from(vec![1_u32, 2]).compact(), "[1,2]");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exactly-representable integer.
    Int(i128),
    /// A finite double (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Renders with two-space indentation and a trailing newline-free
    /// result, in the style of `serde_json::to_string_pretty`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    /// Renders without any whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                    // `{}` prints integral floats without a decimal
                    // point; keep them unambiguously floating-point.
                    if x.fract() == 0.0 && x.abs() < 1e15 && !out.ends_with('.') {
                        let tail = out.rfind(|c: char| !c.is_ascii_digit() && c != '-');
                        let num = &out[tail.map_or(0, |i| i + 1)..];
                        if !num.contains('.') && !num.contains('e') {
                            out.push_str(".0");
                        }
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.iter(), |out, item, ind| {
                item.write(out, ind);
            }),
            Json::Obj(fields) => {
                write_seq(out, indent, '{', '}', fields.iter(), |out, (k, v), ind| {
                    write_escaped(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    v.write(out, ind);
                })
            }
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, Option<usize>),
) {
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|i| i + 1);
    for (i, item) in items.enumerate() {
        if let Some(level) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
        write_item(out, item, inner);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Serializes `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! impl_to_json_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
    )+};
}

impl_to_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for u128 {
    fn to_json(&self) -> Json {
        // Exact while it fits; JSON readers generally cap at i64/f64
        // anyway, so the rare >i128 residue goes out as a string.
        i128::try_from(*self).map_or_else(|_| Json::Str(self.to_string()), Json::Int)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        self.as_ref().map_or(Json::Null, ToJson::to_json)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

macro_rules! impl_to_json_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
    };
}

impl_to_json_tuple!(A: 0);
impl_to_json_tuple!(A: 0, B: 1);
impl_to_json_tuple!(A: 0, B: 1, C: 2);
impl_to_json_tuple!(A: 0, B: 1, C: 2, D: 3);

impl<T: ToJson> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        v.to_json()
    }
}

/// Implements [`ToJson`] for a named-field struct, serializing the
/// listed fields in order — the declarative stand-in for
/// `#[derive(Serialize)]`.
///
/// ```
/// use mqx_json::{impl_to_json, ToJson};
/// struct P { x: u32, y: u32 }
/// impl_to_json!(P { x, y });
/// assert_eq!(P { x: 1, y: 2 }.to_json().compact(), r#"{"x":1,"y":2}"#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field))),+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.compact(), "null");
        assert_eq!(true.to_json().compact(), "true");
        assert_eq!(42_u64.to_json().compact(), "42");
        assert_eq!((-7_i32).to_json().compact(), "-7");
        assert_eq!(1.5_f64.to_json().compact(), "1.5");
        assert_eq!(2.0_f64.to_json().compact(), "2.0");
        assert_eq!(f64::NAN.to_json().compact(), "null");
        assert_eq!("hi".to_json().compact(), r#""hi""#);
    }

    #[test]
    fn string_escaping() {
        assert_eq!(
            "a\"b\\c\nd\te\u{1}".to_json().compact(),
            r#""a\"b\\c\nd\te\u0001""#
        );
    }

    #[test]
    fn u128_exact_or_string() {
        assert_eq!(
            u128::from(u64::MAX).to_json().compact(),
            "18446744073709551615"
        );
        assert_eq!(u128::MAX.to_json().compact(), format!("\"{}\"", u128::MAX));
    }

    #[test]
    fn containers_render() {
        let v = vec![(10_u32, 1.25_f64), (12, 0.5)];
        assert_eq!(v.to_json().compact(), "[[10,1.25],[12,0.5]]");
        assert_eq!(Option::<u32>::None.to_json().compact(), "null");
        assert_eq!(Some("x").to_json().compact(), r#""x""#);
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
    }

    #[test]
    fn pretty_format_matches_expected_shape() {
        struct Row {
            name: String,
            ns: f64,
        }
        impl_to_json!(Row { name, ns });
        let rows = vec![Row {
            name: "a".into(),
            ns: 1.0,
        }];
        let pretty = rows.to_json().pretty();
        assert_eq!(
            pretty,
            "[\n  {\n    \"name\": \"a\",\n    \"ns\": 1.0\n  }\n]"
        );
    }

    #[test]
    fn large_integral_floats_not_suffixed_wrongly() {
        let s = 1e20_f64.to_json().compact();
        assert!(s.parse::<f64>().is_ok(), "{s}");
    }
}
