//! Offline stand-in for the slice of the crates.io `rand` API used by
//! this workspace.
//!
//! The build environment has no access to a crate registry, so the real
//! `rand` crate cannot be fetched. Workspace code only needs seeded,
//! reproducible test/workload generation: the [`Rng`] trait with
//! [`Rng::gen`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`thread_rng`]. This crate provides exactly that surface over a
//! xoshiro256++ generator, so call sites compile unchanged against
//! either this shim or the real crate.
//!
//! Not cryptographically secure; not statistically audited. Do not use
//! outside tests and benchmark workload generation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Types that can be sampled uniformly from raw generator output.
///
/// The equivalent of `rand::distributions::Standard` sampling, collapsed
/// to one trait so that `rng.gen::<T>()` works for the primitive types
/// the workspace draws.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for u128 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A source of random 64-bit words plus the `gen` convenience method.
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws one uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `0..bound` (`bound > 0`) by the
    /// widening-multiply method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range_u64 bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through
    /// SplitMix64 (the reference seeding procedure).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Returns a generator seeded from the wall clock — the shim equivalent
/// of `rand::thread_rng()` for doc examples and ad-hoc use. Unlike the
/// real crate it is freshly seeded per call, not thread-cached.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos ^ 0xA076_1D64_78BD_642F)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "{same} collisions in 64 draws");
    }

    #[test]
    fn gen_covers_used_types() {
        let mut r = StdRng::seed_from_u64(7);
        let _: u64 = r.gen();
        let _: u128 = r.gen();
        let _: u32 = r.gen();
        let _: bool = r.gen();
        // u128 draws use both halves.
        let x: u128 = r.gen();
        let y: u128 = r.gen();
        assert_ne!(x >> 64, x & u128::from(u64::MAX));
        assert_ne!(x, y);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = StdRng::seed_from_u64(9);
        for bound in [1_u64, 2, 7, 1000] {
            for _ in 0..50 {
                assert!(r.gen_range_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_works_through_generic_unsized_bounds() {
        // The same shape `BigUint::random_bits` uses: R: Rng + ?Sized.
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(3);
        assert_ne!(draw(&mut r), draw(&mut r));
    }
}
