//! Sharded multi-modulus rings: [`RnsRing`] runs polynomial arithmetic
//! over a modulus wider than the machine word as `k` independent
//! word-sized residue channels.
//!
//! A Residue Number System (RNS) basis is a set of pairwise-coprime
//! NTT-friendly primes `q_0, …, q_{k−1}`; by the CRT isomorphism
//! `ℤ_Q[x]/(xⁿ ± 1) ≅ ∏ᵢ ℤ_{q_i}[x]/(xⁿ ± 1)` (with `Q = ∏ q_i`), a
//! polynomial product modulo the wide `Q` is exactly `k` independent
//! single-prime products — the standard production alternative to
//! multi-word arithmetic, and how scalable accelerator designs
//! parallelize large-modulus kernels. [`RnsRing`] owns one [`Ring`] per
//! channel, each independently dispatched through the backend registry
//! (so channels can land on different vector tiers), fans channel
//! execution out across scoped threads, and recombines results by
//! Garner's algorithm ([`mqx_bignum::crt`]).
//!
//! Plans for every channel come from the shared
//! [`plan_cache`](crate::plan_cache), so opening a second ring over the
//! same basis rebuilds nothing.
//!
//! Like [`Ring`], every hot-path method takes `&self` and the type is
//! `Send + Sync`: an `Arc<RnsRing>` is a shareable handle, and batched
//! serving goes through [`RingExecutor`](crate::RingExecutor), which
//! fans `channels × batch` into work-stealing items instead of spawning
//! threads per call.
//!
//! ```
//! use mqx::bignum::BigUint;
//! use mqx::{core::primes, RnsRing};
//!
//! // Two word-sized channels stand in for a ~92-bit modulus.
//! let ring = RnsRing::with_moduli(&[primes::Q62, primes::Q30], 64)?;
//! assert_eq!(ring.channels(), 2);
//! assert!(ring.product_modulus().bits() > 64);
//!
//! let f: Vec<BigUint> = (0..64_u64).map(BigUint::from).collect();
//! let g: Vec<BigUint> = (0..64_u64).map(|i| BigUint::from(i * i)).collect();
//! let product = ring.polymul_negacyclic(&f, &g)?;
//! assert_eq!(product.len(), 64);
//! # Ok::<(), mqx::Error>(())
//! ```

use crate::backend::{self, Backend};
use crate::error::Error;
use crate::ops::RingOp;
use crate::plan_cache::{self, PlanCache};
use crate::ring::{Ring, RingBuilder};
use mqx_bignum::crt::CrtContext;
use mqx_bignum::BigUint;
use mqx_core::{primes, Modulus, MulAlgorithm};
use mqx_simd::ResidueSoa;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Default channel width for generated bases: the widest prime that
/// still fits the 62-bit single-word fast path of the engine tiers.
const DEFAULT_BASIS_BITS: u32 = 62;

/// How an [`RnsRingBuilder`] obtains its basis.
enum BasisChoice {
    /// Use these moduli verbatim (validated for pairwise coprimality).
    Explicit(Vec<u128>),
    /// Generate `count` primes below `2^bits` via
    /// [`primes::ntt_prime_chain`].
    Generated { bits: u32, count: usize },
    /// Auto-size channel count and width so the product modulus spans at
    /// least this many bits.
    TargetBits(u32),
}

/// How the builder assigns a backend to each channel.
enum ChannelBackends {
    /// Channels draw from the process's measured calibration ranking:
    /// near-tied tiers round-robin across channels (so channels may
    /// land on different tiers), an `MQX_BACKEND` pin applies to every
    /// channel, and `MQX_CALIBRATE=off` gives every channel the
    /// static-rule tier. See `backend::calibration`.
    Auto,
    /// Every channel pins the named registry backend.
    Uniform(String),
    /// Channel `i` pins `backends[i]` — one entry per channel.
    PerChannel(Vec<Arc<dyn Backend>>),
}

/// Configures and builds an [`RnsRing`].
///
/// ```
/// use mqx::RnsRingBuilder;
///
/// // A 3-channel basis of generated 62-bit NTT primes, pinned to the
/// // portable tier on every channel.
/// let ring = RnsRingBuilder::new(256)
///     .generated_basis(62, 3)
///     .backend_name("portable")
///     .build()?;
/// assert_eq!(ring.channels(), 3);
/// assert!(ring.backend_names().iter().all(|&n| n == "portable"));
/// # Ok::<(), mqx::Error>(())
/// ```
pub struct RnsRingBuilder {
    n: usize,
    basis: BasisChoice,
    backends: ChannelBackends,
    algorithm: MulAlgorithm,
    cache: Arc<PlanCache>,
    scratch_workers: Option<usize>,
}

impl RnsRingBuilder {
    /// Starts a builder for `n`-point rings. Without further
    /// configuration the basis is empty and [`RnsRingBuilder::build`]
    /// fails; pick one with [`RnsRingBuilder::moduli`] or
    /// [`RnsRingBuilder::generated_basis`].
    pub fn new(n: usize) -> Self {
        RnsRingBuilder {
            n,
            basis: BasisChoice::Explicit(Vec::new()),
            backends: ChannelBackends::Auto,
            algorithm: MulAlgorithm::Schoolbook,
            cache: Arc::clone(plan_cache::global()),
            scratch_workers: None,
        }
    }

    /// Uses these pairwise-coprime primes as the basis, one channel per
    /// modulus, in order.
    pub fn moduli(mut self, moduli: &[u128]) -> Self {
        self.basis = BasisChoice::Explicit(moduli.to_vec());
        self
    }

    /// Generates a basis of the `count` largest NTT-friendly primes
    /// below `2^bits` whose 2-adicity supports negacyclic products at
    /// the builder's `n` (i.e. `2n | q − 1`).
    pub fn generated_basis(mut self, bits: u32, count: usize) -> Self {
        self.basis = BasisChoice::Generated { bits, count };
        self
    }

    /// Auto-sizes the basis from a requested product-modulus width:
    /// picks the channel count and per-channel prime width so that
    /// `Q = ∏ qᵢ` spans at least `bits` bits, with every channel
    /// NTT-friendly at the builder's `n` (negacyclic included). Callers
    /// stop counting channels by hand — ask for "a 186-bit modulus" and
    /// get (say) three 62-bit channels.
    ///
    /// Widths are balanced: the target is divided evenly over the
    /// fewest word-sized channels that can carry it, then widened one
    /// bit at a time (spilling into an extra channel past the 62-bit
    /// single-word ceiling) until the generated product actually
    /// reaches the target.
    pub fn target_modulus_bits(mut self, bits: u32) -> Self {
        self.basis = BasisChoice::TargetBits(bits);
        self
    }

    /// Pins every channel to the named registry backend.
    pub fn backend_name(mut self, name: &str) -> Self {
        self.backends = ChannelBackends::Uniform(name.to_string());
        self
    }

    /// Pins channel `i` to `backends[i]` — the list length must match
    /// the channel count at build time. This is how channels land on
    /// different tiers (e.g. AVX-512 for the hot channel, portable for
    /// the rest).
    pub fn channel_backends(mut self, backends: Vec<Arc<dyn Backend>>) -> Self {
        self.backends = ChannelBackends::PerChannel(backends);
        self
    }

    /// Selects the double-word multiplication algorithm for every
    /// channel's modulus.
    pub fn mul_algorithm(mut self, algorithm: MulAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Serves every channel's NTT plan from `cache` instead of the
    /// process-wide [`plan_cache::global`].
    pub fn plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Sizes every channel ring's scratch pool for `workers` concurrent
    /// callers (see `RingBuilder::scratch_concurrency`): servers
    /// driving the ring through a wide
    /// [`RingExecutor`](crate::RingExecutor) pass the executor width so
    /// in-flight channel products never degrade to malloc/free churn.
    pub fn scratch_concurrency(mut self, workers: usize) -> Self {
        self.scratch_workers = Some(workers);
        self
    }

    /// Builds the ring: resolves the basis, validates coprimality,
    /// precomputes the Garner constants, and opens one backend-dispatched
    /// [`Ring`] per channel (plans served by the configured cache).
    pub fn build(self) -> Result<RnsRing, Error> {
        // Negacyclic products at size n need a 2n-th root of unity,
        // i.e. 2-adicity ≥ log₂(n) + 1.
        let two_adicity = self.n.trailing_zeros() + 1;
        let moduli = match self.basis {
            BasisChoice::Explicit(v) => v,
            BasisChoice::Generated { bits, count } => {
                primes::ntt_prime_chain(bits, two_adicity, count).ok_or(Error::BasisGeneration {
                    bits,
                    two_adicity,
                    count,
                })?
            }
            BasisChoice::TargetBits(bits) => auto_basis(bits, two_adicity)?,
        };
        let crt = CrtContext::new(&moduli)?;

        if let ChannelBackends::PerChannel(ref backends) = self.backends {
            if backends.len() != moduli.len() {
                return Err(Error::ChannelCountMismatch {
                    expected: moduli.len(),
                    got: backends.len(),
                });
            }
        }
        // Resolve the auto selection once for the whole basis: channels
        // draw from the calibration's competitive set (one env/memo
        // consult instead of k), honoring the MQX_BACKEND pin.
        let auto_assignments = match self.backends {
            ChannelBackends::Auto => Some(backend::selected_channel_backends(moduli.len())?),
            _ => None,
        };
        let rings: Vec<Ring> = moduli
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let mut builder = RingBuilder::new(q, self.n)
                    .mul_algorithm(self.algorithm)
                    .plan_cache(Arc::clone(&self.cache));
                if let Some(workers) = self.scratch_workers {
                    builder = builder.scratch_concurrency(workers);
                }
                match &self.backends {
                    ChannelBackends::Auto => {
                        let assignments = auto_assignments.as_ref().expect("resolved above");
                        builder.backend(Arc::clone(&assignments[i]))
                    }
                    ChannelBackends::Uniform(name) => builder.backend_name(name),
                    ChannelBackends::PerChannel(backends) => {
                        builder.backend(Arc::clone(&backends[i]))
                    }
                }
                .build()
            })
            .collect::<Result<_, _>>()?;

        Ok(RnsRing {
            rings,
            crt,
            n: self.n,
            rescale: OnceLock::new(),
            extend: Mutex::new(HashMap::new()),
            resident: Mutex::new(HashMap::new()),
            fresh: Mutex::new(Vec::new()),
        })
    }
}

/// Precomputed constants for [`RingOp::Rescale`]: built once per ring on
/// first use and memoized (the same cached-constants discipline as
/// [`PlanCache`] entries — pay the inversions at setup, never per
/// coefficient).
struct RescaleCtx {
    /// `h = ⌊q_last / 2⌋` — the divide-and-round bias, reduced mod
    /// `q_last`.
    half: u128,
    /// `h mod q_i` for every surviving channel `i < k − 1`.
    half_mod: Vec<u128>,
    /// `(q_last mod q_i)⁻¹ mod q_i` for every surviving channel.
    q_inv: Vec<u128>,
    /// Garner constants over the surviving basis `q_0, …, q_{k−2}` (the
    /// op's output basis).
    crt: CrtContext,
}

impl RescaleCtx {
    fn new(ring: &RnsRing) -> Self {
        let k = ring.channels();
        debug_assert!(k >= 2, "rescale context needs a channel to drop");
        let q_last = ring.moduli()[k - 1];
        let half = q_last / 2;
        let survivors = &ring.rings[..k - 1];
        let half_mod = survivors.iter().map(|r| r.modulus().reduce(half)).collect();
        let q_inv = survivors
            .iter()
            .map(|r| {
                r.modulus()
                    .inv_mod(q_last)
                    .expect("pairwise-coprime basis makes q_last invertible in every channel")
            })
            .collect();
        let crt = CrtContext::new(&ring.moduli()[..k - 1])
            .expect("a prefix of a validated basis is a validated basis");
        RescaleCtx {
            half,
            half_mod,
            q_inv,
            crt,
        }
    }
}

/// Precomputed constants for one [`RingOp::BasisExtend`] width: the
/// generated extension primes, the per-target Garner prefix fold tables,
/// and the extended-basis CRT constants. Cached per `extra_channels` in
/// the ring (again the [`PlanCache`] discipline: keyed, built once,
/// shared by every request).
struct BasisExtendCtx {
    /// Barrett contexts for the appended primes, in channel order.
    extra: Vec<Modulus>,
    /// `tables[t][i] = (m_0 ⋯ m_{i−1}) mod p_t` — the word-level fold
    /// table for target prime `t` over the source basis digits.
    tables: Vec<Vec<u128>>,
    /// Garner constants over the extended basis (the op's output basis).
    crt: CrtContext,
}

/// Precomputed constants for one *resident width* `m`: the basis an op
/// chain reaches after rescales (`m < k`, a prefix of the ring's own
/// primes) or basis extensions (`m > k`, the ring's primes followed by
/// its deterministic fresh primes). Width uniquely determines the basis
/// because every basis in a graph is a prefix of one chain —
/// [`RingOp::BasisExtend`] appends to the end, [`RingOp::Rescale`] drops
/// from the end. Cached per width in the ring ([`PlanCache`]
/// discipline: keyed, built once, shared by every graph).
struct WidthCtx {
    /// Barrett contexts for the width's primes, in channel order.
    mods: Vec<Modulus>,
    /// Garner constants over the width's basis — the single join an op
    /// graph runs at its output when the chain ends at this width.
    crt: CrtContext,
    /// `h = ⌊q_last / 2⌋` for rescaling *from* this width (0 when the
    /// width has no channel to drop).
    half: u128,
    /// `h mod q_i` for every surviving channel `i < m − 1`.
    half_mod: Vec<u128>,
    /// `(q_last mod q_i)⁻¹ mod q_i` for every surviving channel.
    q_inv: Vec<u128>,
}

impl WidthCtx {
    fn new(moduli: &[u128]) -> Result<Self, Error> {
        let crt = CrtContext::new(moduli)?;
        let mods = moduli
            .iter()
            .map(|&q| Modulus::new(q).map_err(Error::from))
            .collect::<Result<Vec<_>, _>>()?;
        let m = moduli.len();
        let (half, half_mod, q_inv) = if m >= 2 {
            let q_last = moduli[m - 1];
            let half = q_last / 2;
            let survivors = &mods[..m - 1];
            let half_mod = survivors.iter().map(|md| md.reduce(half)).collect();
            let q_inv = survivors
                .iter()
                .map(|md| {
                    md.inv_mod(q_last)
                        .expect("pairwise-coprime basis makes q_last invertible in every channel")
                })
                .collect();
            (half, half_mod, q_inv)
        } else {
            (0, Vec::new(), Vec::new())
        };
        Ok(WidthCtx {
            mods,
            crt,
            half,
            half_mod,
            q_inv,
        })
    }
}

/// Picks a basis whose product spans at least `target_bits` bits: the
/// fewest word-sized channels that can carry the target with balanced
/// widths, widened (and eventually spilled into an extra channel) until
/// the *generated* product — primes sit slightly below `2^width` —
/// actually reaches the target.
fn auto_basis(target_bits: u32, two_adicity: u32) -> Result<Vec<u128>, Error> {
    let target = target_bits.max(1);
    // A prime with 2^two_adicity | q − 1 needs at least two_adicity + 1
    // bits; give the search one bit of headroom.
    let floor_bits = (two_adicity + 2).min(DEFAULT_BASIS_BITS);
    let mut count = target.div_ceil(DEFAULT_BASIS_BITS).max(1) as usize;
    let mut width = target
        .div_ceil(count as u32)
        .clamp(floor_bits, DEFAULT_BASIS_BITS);
    // Each attempt either widens a channel or adds one, so the walk is
    // finite; the cap is generous slack over the worst case.
    for _ in 0..256 {
        if let Some(chain) = primes::ntt_prime_chain(width, two_adicity, count) {
            let product = chain
                .iter()
                .fold(BigUint::one(), |acc, &q| &acc * &BigUint::from(q));
            if product.bits() >= u64::from(target) {
                return Ok(chain);
            }
        }
        if width < DEFAULT_BASIS_BITS {
            width += 1;
        } else {
            count += 1;
            width = target
                .div_ceil(count as u32)
                .clamp(floor_bits, DEFAULT_BASIS_BITS);
        }
    }
    Err(Error::BasisGeneration {
        bits: width,
        two_adicity,
        count,
    })
}

/// A sharded multi-modulus polynomial ring `ℤ_Q[x]/(xⁿ ± 1)` with
/// `Q = ∏ q_i`: one runtime-dispatched [`Ring`] per word-sized residue
/// channel, CRT decomposition/recombination at the boundary, and
/// channel execution fanned out across scoped threads.
pub struct RnsRing {
    rings: Vec<Ring>,
    crt: CrtContext,
    n: usize,
    /// Lazily-built [`RingOp::Rescale`] constants (valid once `k ≥ 2`).
    rescale: OnceLock<RescaleCtx>,
    /// Lazily-built [`RingOp::BasisExtend`] constants, keyed by
    /// `extra_channels`.
    extend: Mutex<HashMap<usize, Arc<BasisExtendCtx>>>,
    /// Lazily-built resident-width constants for op-graph chains, keyed
    /// by channel width.
    resident: Mutex<HashMap<usize, Arc<WidthCtx>>>,
    /// The deterministic fresh-prime suffix of the ring's basis chain
    /// (the primes [`RingOp::BasisExtend`] extends into), grown on
    /// demand; a prefix of this list is *the* extension basis for every
    /// width.
    fresh: Mutex<Vec<u128>>,
}

impl fmt::Debug for RnsRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RnsRing")
            .field("moduli", &self.crt.moduli())
            .field("n", &self.n)
            .field("backends", &self.backend_names())
            .finish()
    }
}

impl RnsRing {
    /// Builds an `n`-point ring over an auto-generated basis of
    /// `channels` word-sized (62-bit) NTT primes, channels assigned
    /// from the measured calibration ranking (near-tied tiers
    /// round-robin, so channels may land on different tiers; see
    /// [`backend::calibration`](crate::backend::calibration) and the
    /// `MQX_BACKEND` / `MQX_CALIBRATE` overrides).
    pub fn auto(channels: usize, n: usize) -> Result<RnsRing, Error> {
        RnsRingBuilder::new(n)
            .generated_basis(DEFAULT_BASIS_BITS, channels)
            .build()
    }

    /// Builds an `n`-point ring over the given pairwise-coprime primes.
    pub fn with_moduli(moduli: &[u128], n: usize) -> Result<RnsRing, Error> {
        RnsRingBuilder::new(n).moduli(moduli).build()
    }

    /// Starts an [`RnsRingBuilder`] for finer control.
    pub fn builder(n: usize) -> RnsRingBuilder {
        RnsRingBuilder::new(n)
    }

    /// The number of residue channels `k`.
    pub fn channels(&self) -> usize {
        self.rings.len()
    }

    /// The transform size `n`.
    pub fn size(&self) -> usize {
        self.n
    }

    /// The channel moduli, in channel order.
    pub fn moduli(&self) -> &[u128] {
        self.crt.moduli()
    }

    /// The product modulus `Q = ∏ q_i` the ring emulates.
    pub fn product_modulus(&self) -> &BigUint {
        self.crt.product()
    }

    /// The per-channel rings, in channel order.
    pub fn rings(&self) -> &[Ring] {
        &self.rings
    }

    /// The backend name each channel dispatches to.
    pub fn backend_names(&self) -> Vec<&'static str> {
        self.rings.iter().map(|r| r.backend().name()).collect()
    }

    /// Whether every channel field has a `2n`-th root of unity (the
    /// requirement for [`RnsRing::polymul_negacyclic`]).
    pub fn supports_negacyclic(&self) -> bool {
        self.rings.iter().all(Ring::supports_negacyclic)
    }

    fn check_len(&self, got: usize) -> Result<(), Error> {
        if got == self.n {
            Ok(())
        } else {
            Err(Error::LengthMismatch {
                expected: self.n,
                got,
            })
        }
    }

    /// Decomposes a coefficient slice into per-channel residue vectors
    /// (channel-major: `k` vectors of `n` residues).
    ///
    /// # Errors
    ///
    /// [`Error::LengthMismatch`] for a slice of the wrong length;
    /// [`Error::CoefficientOutOfRange`] for any coefficient at or above
    /// [`RnsRing::product_modulus`] (callers reduce first, so aliasing
    /// can never silently change a value).
    pub fn to_residues(&self, coeffs: &[BigUint]) -> Result<Vec<Vec<u128>>, Error> {
        self.check_len(coeffs.len())?;
        if let Some(index) = coeffs.iter().position(|c| c >= self.crt.product()) {
            return Err(Error::CoefficientOutOfRange { index });
        }
        // Channel-major: one output vector per channel, no
        // per-coefficient allocation on this serial boundary path.
        Ok(self
            .moduli()
            .iter()
            .map(|&q| {
                let q = BigUint::from(q);
                coeffs
                    .iter()
                    .map(|c| (c % &q).to_u128().expect("word-sized residue"))
                    .collect()
            })
            .collect())
    }

    /// Recombines per-channel residue vectors (channel-major, as
    /// produced by [`RnsRing::to_residues`]) into coefficients in
    /// `[0, Q)` by Garner's algorithm.
    ///
    /// # Errors
    ///
    /// [`Error::ChannelCountMismatch`] when `channels.len() != k`;
    /// [`Error::LengthMismatch`] when any channel vector is not
    /// `n`-long.
    pub fn recombine(&self, channels: &[Vec<u128>]) -> Result<Vec<BigUint>, Error> {
        recombine_with(&self.crt, channels, self.n)
    }

    /// Negacyclic product in `ℤ_Q[x]/(xⁿ + 1)` — the RLWE workhorse
    /// over a modulus wider than the machine word. Coefficients must be
    /// reduced below [`RnsRing::product_modulus`]; the result is
    /// reduced likewise. Takes `&self`: safe to call concurrently on a
    /// shared ring.
    ///
    /// This one-shot path runs each channel's product on a scoped
    /// thread; servers with a *queue* of products should use
    /// [`RingExecutor`](crate::RingExecutor) instead, which fans
    /// `channels × batch` into pooled work-stealing items and pays the
    /// thread start-up cost once rather than per call.
    ///
    /// # Errors
    ///
    /// [`Error::NoNegacyclicSupport`] if any channel field lacks a
    /// `2n`-th root of unity (check [`RnsRing::supports_negacyclic`]),
    /// plus the [`RnsRing::to_residues`] validation errors.
    pub fn polymul_negacyclic(&self, a: &[BigUint], b: &[BigUint]) -> Result<Vec<BigUint>, Error> {
        self.polymul_big(a, b, true)
    }

    /// Cyclic product in `ℤ_Q[x]/(xⁿ − 1)`, sharded per channel like
    /// [`RnsRing::polymul_negacyclic`] (and equally thread-safe).
    pub fn polymul_cyclic(&self, a: &[BigUint], b: &[BigUint]) -> Result<Vec<BigUint>, Error> {
        self.polymul_big(a, b, false)
    }

    fn polymul_big(
        &self,
        a: &[BigUint],
        b: &[BigUint],
        negacyclic: bool,
    ) -> Result<Vec<BigUint>, Error> {
        let a_channels = self.to_residues(a)?;
        let b_channels = self.to_residues(b)?;

        // One scoped worker per channel; channels only need `&Ring` now
        // that ring scratch is pooled, so the shared `&self` is enough.
        let results: Vec<Result<Vec<u128>, Error>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .rings
                .iter()
                .zip(a_channels.into_iter().zip(b_channels))
                .map(|(ring, (ra, rb))| {
                    scope.spawn(move || {
                        if negacyclic {
                            ring.polymul_negacyclic(&ra, &rb)
                        } else {
                            ring.polymul_cyclic(&ra, &rb)
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("RNS channel worker panicked"))
                .collect()
        });

        let per_channel = results.into_iter().collect::<Result<Vec<_>, _>>()?;
        self.recombine(&per_channel)
    }

    /// The rescale constants, built on first use. Errors when the basis
    /// has no channel to drop.
    fn rescale_ctx(&self) -> Result<&RescaleCtx, Error> {
        if self.channels() < 2 {
            return Err(Error::UnsupportedOp {
                op: "rescale",
                reason: "needs at least two RNS channels (one to drop, one to keep)",
            });
        }
        Ok(self.rescale.get_or_init(|| RescaleCtx::new(self)))
    }

    /// The basis-extension constants for this width, built on first use
    /// and cached per `extra_channels`.
    fn basis_extend_ctx(&self, extra_channels: usize) -> Result<Arc<BasisExtendCtx>, Error> {
        if extra_channels == 0 {
            return Err(Error::UnsupportedOp {
                op: "basis-extend",
                reason: "needs at least one extra channel to extend into",
            });
        }
        let mut cache = self.extend.lock().expect("basis-extension cache poisoned");
        if let Some(ctx) = cache.get(&extra_channels) {
            return Ok(Arc::clone(ctx));
        }

        let fresh = self.fresh_primes(extra_channels)?;
        let mut extended = self.moduli().to_vec();
        extended.extend_from_slice(&fresh);
        let crt = CrtContext::new(&extended)?;
        let tables = fresh.iter().map(|&p| self.crt.prefixes_mod(p)).collect();
        let extra = fresh
            .iter()
            .map(|&p| Modulus::new(p).map_err(Error::from))
            .collect::<Result<Vec<_>, _>>()?;

        let ctx = Arc::new(BasisExtendCtx { extra, tables, crt });
        cache.insert(extra_channels, Arc::clone(&ctx));
        Ok(ctx)
    }

    /// The first `count` fresh NTT primes of the ring's deterministic
    /// extension chain: walk the same descending 62-bit chain the
    /// generated bases use, skipping any prime already in this basis.
    /// Each retry asks for a longer chain, so the walk either finds
    /// enough fresh primes or the chain itself runs out
    /// (→ `BasisGeneration`). The result is memoized, and a shorter
    /// request is always a prefix of a longer one — the property that
    /// lets a channel *width* uniquely name a basis in op-graph chains.
    fn fresh_primes(&self, count: usize) -> Result<Vec<u128>, Error> {
        let mut cache = self.fresh.lock().expect("fresh-prime cache poisoned");
        if cache.len() >= count {
            return Ok(cache[..count].to_vec());
        }
        let two_adicity = self.n.trailing_zeros() + 1;
        let mut want = self.channels() + count;
        let fresh = loop {
            let chain = primes::ntt_prime_chain(DEFAULT_BASIS_BITS, two_adicity, want).ok_or(
                Error::BasisGeneration {
                    bits: DEFAULT_BASIS_BITS,
                    two_adicity,
                    count: want,
                },
            )?;
            let fresh: Vec<u128> = chain
                .into_iter()
                .filter(|q| !self.moduli().contains(q))
                .collect();
            if fresh.len() >= count {
                break fresh[..count].to_vec();
            }
            want += count - fresh.len();
        };
        *cache = fresh;
        Ok(cache.clone())
    }

    /// The moduli of resident width `m`: a prefix of the ring's basis
    /// chain (own primes, then deterministic fresh primes). See
    /// [`WidthCtx`].
    fn width_moduli(&self, width: usize) -> Result<Vec<u128>, Error> {
        if width == 0 {
            return Err(Error::UnsupportedOp {
                op: "op-graph",
                reason: "an op chain rescaled the basis away (zero channels left)",
            });
        }
        let k = self.channels();
        if width <= k {
            return Ok(self.moduli()[..width].to_vec());
        }
        let mut moduli = self.moduli().to_vec();
        moduli.extend(self.fresh_primes(width - k)?);
        Ok(moduli)
    }

    /// The resident-width constants for `width` channels, built on
    /// first use and cached. Warmed at submit so graph validation
    /// errors surface before any work item runs.
    fn width_ctx(&self, width: usize) -> Result<Arc<WidthCtx>, Error> {
        if let Some(ctx) = self
            .resident
            .lock()
            .expect("resident-width cache poisoned")
            .get(&width)
        {
            return Ok(Arc::clone(ctx));
        }
        // Build outside the lock (fresh_primes takes its own); racing
        // builders produce identical contexts, first insert wins.
        let ctx = Arc::new(WidthCtx::new(&self.width_moduli(width)?)?);
        let mut cache = self.resident.lock().expect("resident-width cache poisoned");
        Ok(Arc::clone(cache.entry(width).or_insert(ctx)))
    }

    /// The basis a [`RingOp::BasisExtend`] with this width targets: the
    /// ring's own primes followed by `extra_channels` freshly generated
    /// coprime NTT primes (deterministic per ring — the constants are
    /// cached, so every request extending by the same width lands in the
    /// same basis).
    ///
    /// # Errors
    ///
    /// [`Error::UnsupportedOp`] for a zero extension,
    /// [`Error::BasisGeneration`] when the prime chain cannot supply
    /// enough fresh primes.
    pub fn extended_moduli(&self, extra_channels: usize) -> Result<Vec<u128>, Error> {
        Ok(self.basis_extend_ctx(extra_channels)?.crt.moduli().to_vec())
    }
}

/// Garner recombination of channel-major residues against an arbitrary
/// basis context (the ring's own, or an op's output basis).
fn recombine_with(
    crt: &CrtContext,
    channels: &[Vec<u128>],
    n: usize,
) -> Result<Vec<BigUint>, Error> {
    if channels.len() != crt.channels() {
        return Err(Error::ChannelCountMismatch {
            expected: crt.channels(),
            got: channels.len(),
        });
    }
    for channel in channels {
        if channel.len() != n {
            return Err(Error::LengthMismatch {
                expected: n,
                got: channel.len(),
            });
        }
    }
    let mut digits = vec![0_u128; crt.channels()];
    Ok((0..n)
        .map(|j| {
            for (digit, channel) in digits.iter_mut().zip(channels) {
                *digit = channel[j];
            }
            crt.recombine(&digits)
        })
        .collect())
}

/// An [`RnsRing`] exposes its residue channels directly: `split` is CRT
/// decomposition, `join` is Garner recombination, and each channel's
/// product is an independent word-sized work item — the decomposition
/// [`RingExecutor`](crate::RingExecutor) schedules.
impl crate::PolyRing for RnsRing {
    fn size(&self) -> usize {
        self.n
    }

    fn modulus_bits(&self) -> u64 {
        self.crt.product().bits()
    }

    fn supports_negacyclic(&self) -> bool {
        self.rings.iter().all(Ring::supports_negacyclic)
    }

    fn channels(&self) -> usize {
        self.rings.len()
    }

    fn split(&self, coeffs: &crate::Coefficients) -> Result<Vec<Vec<u128>>, Error> {
        let bigs = coeffs.as_bigs().ok_or(Error::CoefficientKind {
            expected: "big",
            got: coeffs.kind(),
        })?;
        self.to_residues(bigs)
    }

    fn channel_polymul(
        &self,
        channel: usize,
        op: crate::PolyOp,
        a: &[u128],
        b: &[u128],
    ) -> Result<Vec<u128>, Error> {
        let ring = self.rings.get(channel).ok_or(Error::ChannelOutOfRange {
            channel,
            channels: self.rings.len(),
        })?;
        match op {
            crate::PolyOp::Cyclic => ring.polymul_cyclic(a, b),
            crate::PolyOp::Negacyclic => ring.polymul_negacyclic(a, b),
        }
    }

    fn channel_polymul_into(
        &self,
        channel: usize,
        op: crate::PolyOp,
        a: &[u128],
        b: &[u128],
        out: &mut Vec<u128>,
    ) -> Result<(), Error> {
        let ring = self.rings.get(channel).ok_or(Error::ChannelOutOfRange {
            channel,
            channels: self.rings.len(),
        })?;
        match op {
            crate::PolyOp::Cyclic => ring.polymul_cyclic_into(a, b, out),
            crate::PolyOp::Negacyclic => ring.polymul_negacyclic_into(a, b, out),
        }
    }

    fn join(&self, channels: Vec<Vec<u128>>) -> Result<crate::Coefficients, Error> {
        self.recombine(&channels).map(crate::Coefficients::Big)
    }

    fn op_output_channels(&self, op: &RingOp) -> Result<usize, Error> {
        match op {
            RingOp::Polymul(_) | RingOp::Add | RingOp::Sub => Ok(self.channels()),
            RingOp::Rescale => self.rescale_ctx().map(|ctx| ctx.crt.channels()),
            RingOp::BasisExtend { extra_channels } => self
                .basis_extend_ctx(*extra_channels)
                .map(|ctx| ctx.crt.channels()),
        }
    }

    fn channel_apply(
        &self,
        op: &RingOp,
        channel: usize,
        a: &[Vec<u128>],
        b: Option<&[Vec<u128>]>,
    ) -> Result<Vec<u128>, Error> {
        let k = self.channels();
        if a.len() != k {
            return Err(Error::ChannelCountMismatch {
                expected: k,
                got: a.len(),
            });
        }
        let binary = || {
            let b = b.ok_or(Error::OperandCountMismatch {
                op: op.name(),
                expected: 2,
                got: 1,
            })?;
            if b.len() != k {
                return Err(Error::ChannelCountMismatch {
                    expected: k,
                    got: b.len(),
                });
            }
            Ok(b)
        };
        match op {
            RingOp::Polymul(p) => {
                let b = binary()?;
                let (ra, rb) =
                    a.get(channel)
                        .zip(b.get(channel))
                        .ok_or(Error::ChannelOutOfRange {
                            channel,
                            channels: k,
                        })?;
                self.channel_polymul(channel, *p, ra, rb)
            }
            RingOp::Add | RingOp::Sub => {
                let b = binary()?;
                let ring = self.rings.get(channel).ok_or(Error::ChannelOutOfRange {
                    channel,
                    channels: k,
                })?;
                let (ra, rb) = (&a[channel], &b[channel]);
                if ra.len() != rb.len() {
                    return Err(Error::OperandLengthMismatch {
                        a: ra.len(),
                        b: rb.len(),
                    });
                }
                let sa = ResidueSoa::from_u128s(ra);
                let sb = ResidueSoa::from_u128s(rb);
                let mut out = ResidueSoa::zeros(ra.len());
                if matches!(op, RingOp::Add) {
                    ring.vadd(&sa, &sb, &mut out);
                } else {
                    ring.vsub(&sa, &sb, &mut out);
                }
                Ok(out.to_u128s())
            }
            RingOp::Rescale => {
                if b.is_some() {
                    return Err(Error::OperandCountMismatch {
                        op: op.name(),
                        expected: 1,
                        got: 2,
                    });
                }
                let ctx = self.rescale_ctx()?;
                if channel >= k - 1 {
                    return Err(Error::ChannelOutOfRange {
                        channel,
                        channels: k - 1,
                    });
                }
                let (ai, last) = (&a[channel], &a[k - 1]);
                if ai.len() != last.len() {
                    return Err(Error::LengthMismatch {
                        expected: last.len(),
                        got: ai.len(),
                    });
                }
                // out = round(x / q_last) mod q_i, entirely word-level:
                // with v = (x + h) mod q_last (computable from the last
                // channel alone), round(x / q_last) = (x + h − v)/q_last,
                // so out_i = (a_i + h − v) · q_last⁻¹ mod q_i.
                let m_last = self.rings[k - 1].modulus();
                let m_i = self.rings[channel].modulus();
                let (h_i, q_inv) = (ctx.half_mod[channel], ctx.q_inv[channel]);
                Ok(ai
                    .iter()
                    .zip(last)
                    .map(|(&a_i, &a_last)| {
                        let v = m_last.add_mod(a_last, ctx.half);
                        let t = m_i.sub_mod(m_i.add_mod(a_i, h_i), m_i.reduce(v));
                        m_i.mul_mod(t, q_inv)
                    })
                    .collect())
            }
            RingOp::BasisExtend { extra_channels } => {
                if b.is_some() {
                    return Err(Error::OperandCountMismatch {
                        op: op.name(),
                        expected: 1,
                        got: 2,
                    });
                }
                let n = a[0].len();
                if let Some(bad) = a.iter().find(|ch| ch.len() != n) {
                    return Err(Error::LengthMismatch {
                        expected: n,
                        got: bad.len(),
                    });
                }
                // Channels inside the source basis pass through
                // unchanged; fresh channels fold the Garner mixed-radix
                // digits of each coefficient against the precomputed
                // `prefix mod p_t` table — word arithmetic only.
                if channel < k {
                    return Ok(a[channel].clone());
                }
                let ctx = self.basis_extend_ctx(*extra_channels)?;
                let t = channel - k;
                let m_t = ctx.extra.get(t).ok_or(Error::ChannelOutOfRange {
                    channel,
                    channels: ctx.crt.channels(),
                })?;
                let table = &ctx.tables[t];
                let mut residues = vec![0_u128; k];
                Ok((0..n)
                    .map(|j| {
                        for (r, ch) in residues.iter_mut().zip(a) {
                            *r = ch[j];
                        }
                        self.crt
                            .digits(&residues)
                            .iter()
                            .zip(table)
                            .fold(0_u128, |acc, (&d, &pre)| {
                                m_t.add_mod(acc, m_t.mul_mod(m_t.reduce(d), pre))
                            })
                    })
                    .collect())
            }
        }
    }

    fn op_join(&self, op: &RingOp, channels: Vec<Vec<u128>>) -> Result<crate::Coefficients, Error> {
        match op {
            RingOp::Rescale => {
                let ctx = self.rescale_ctx()?;
                recombine_with(&ctx.crt, &channels, self.n).map(crate::Coefficients::Big)
            }
            RingOp::BasisExtend { extra_channels } => {
                let ctx = self.basis_extend_ctx(*extra_channels)?;
                recombine_with(&ctx.crt, &channels, self.n).map(crate::Coefficients::Big)
            }
            _ => self.join(channels),
        }
    }

    fn op_output_channels_at(&self, op: &RingOp, width: usize) -> Result<usize, Error> {
        let k = self.channels();
        if width == k {
            return self.op_output_channels(op);
        }
        match op {
            RingOp::Polymul(_) => {
                if width < k {
                    Ok(width)
                } else {
                    Err(Error::UnsupportedOp {
                        op: op.name(),
                        reason: "extension channels have no NTT plans; multiply before extending",
                    })
                }
            }
            RingOp::Add | RingOp::Sub => {
                if width > k {
                    self.width_ctx(width)?;
                }
                Ok(width)
            }
            RingOp::Rescale => {
                if width < 2 {
                    return Err(Error::UnsupportedOp {
                        op: op.name(),
                        reason: "needs at least two RNS channels (one to drop, one to keep)",
                    });
                }
                self.width_ctx(width)?;
                Ok(width - 1)
            }
            RingOp::BasisExtend { extra_channels } => {
                if *extra_channels == 0 {
                    return Err(Error::UnsupportedOp {
                        op: op.name(),
                        reason: "needs at least one extra channel to extend into",
                    });
                }
                self.width_ctx(width)?;
                self.width_ctx(width + extra_channels)?;
                Ok(width + extra_channels)
            }
        }
    }

    fn channel_apply_at(
        &self,
        op: &RingOp,
        width: usize,
        channel: usize,
        a: &[Vec<u128>],
        b: Option<&[Vec<u128>]>,
    ) -> Result<Vec<u128>, Error> {
        let k = self.channels();
        if width == k {
            return self.channel_apply(op, channel, a, b);
        }
        if a.len() != width {
            return Err(Error::ChannelCountMismatch {
                expected: width,
                got: a.len(),
            });
        }
        let binary = || {
            let b = b.ok_or(Error::OperandCountMismatch {
                op: op.name(),
                expected: 2,
                got: 1,
            })?;
            if b.len() != width {
                return Err(Error::ChannelCountMismatch {
                    expected: width,
                    got: b.len(),
                });
            }
            Ok(b)
        };
        let unary = || {
            if b.is_some() {
                return Err(Error::OperandCountMismatch {
                    op: op.name(),
                    expected: 1,
                    got: 2,
                });
            }
            Ok(())
        };
        match op {
            RingOp::Polymul(p) => {
                if width > k {
                    return Err(Error::UnsupportedOp {
                        op: op.name(),
                        reason: "extension channels have no NTT plans; multiply before extending",
                    });
                }
                let b = binary()?;
                let (ra, rb) =
                    a.get(channel)
                        .zip(b.get(channel))
                        .ok_or(Error::ChannelOutOfRange {
                            channel,
                            channels: width,
                        })?;
                // Channel `channel < width < k` is one of the ring's own
                // primes — the native kernel applies.
                self.channel_polymul(channel, *p, ra, rb)
            }
            RingOp::Add | RingOp::Sub => {
                let b = binary()?;
                let (ra, rb) =
                    a.get(channel)
                        .zip(b.get(channel))
                        .ok_or(Error::ChannelOutOfRange {
                            channel,
                            channels: width,
                        })?;
                if ra.len() != rb.len() {
                    return Err(Error::OperandLengthMismatch {
                        a: ra.len(),
                        b: rb.len(),
                    });
                }
                if channel < k {
                    // One of the ring's own channels: the SIMD engine
                    // path, exactly as at native width.
                    let ring = &self.rings[channel];
                    let sa = ResidueSoa::from_u128s(ra);
                    let sb = ResidueSoa::from_u128s(rb);
                    let mut out = ResidueSoa::zeros(ra.len());
                    if matches!(op, RingOp::Add) {
                        ring.vadd(&sa, &sb, &mut out);
                    } else {
                        ring.vsub(&sa, &sb, &mut out);
                    }
                    Ok(out.to_u128s())
                } else {
                    // An extension channel: scalar Barrett arithmetic
                    // over the fresh prime.
                    let ctx = self.width_ctx(width)?;
                    let m = &ctx.mods[channel];
                    Ok(ra
                        .iter()
                        .zip(rb)
                        .map(|(&x, &y)| {
                            if matches!(op, RingOp::Add) {
                                m.add_mod(x, y)
                            } else {
                                m.sub_mod(x, y)
                            }
                        })
                        .collect())
                }
            }
            RingOp::Rescale => {
                unary()?;
                if width < 2 {
                    return Err(Error::UnsupportedOp {
                        op: op.name(),
                        reason: "needs at least two RNS channels (one to drop, one to keep)",
                    });
                }
                let ctx = self.width_ctx(width)?;
                if channel >= width - 1 {
                    return Err(Error::ChannelOutOfRange {
                        channel,
                        channels: width - 1,
                    });
                }
                let (ai, last) = (&a[channel], &a[width - 1]);
                if ai.len() != last.len() {
                    return Err(Error::LengthMismatch {
                        expected: last.len(),
                        got: ai.len(),
                    });
                }
                // Same word-level divide-and-round as the native-width
                // path, against this width's chain constants.
                let m_last = &ctx.mods[width - 1];
                let m_i = &ctx.mods[channel];
                let (h_i, q_inv) = (ctx.half_mod[channel], ctx.q_inv[channel]);
                Ok(ai
                    .iter()
                    .zip(last)
                    .map(|(&a_i, &a_last)| {
                        let v = m_last.add_mod(a_last, ctx.half);
                        let t = m_i.sub_mod(m_i.add_mod(a_i, h_i), m_i.reduce(v));
                        m_i.mul_mod(t, q_inv)
                    })
                    .collect())
            }
            RingOp::BasisExtend { extra_channels } => {
                unary()?;
                let n = a[0].len();
                if let Some(bad) = a.iter().find(|ch| ch.len() != n) {
                    return Err(Error::LengthMismatch {
                        expected: n,
                        got: bad.len(),
                    });
                }
                let target = width + extra_channels;
                if channel >= target {
                    return Err(Error::ChannelOutOfRange {
                        channel,
                        channels: target,
                    });
                }
                if channel < width {
                    return Ok(a[channel].clone());
                }
                // A fresh channel: fold the Garner digits of the
                // source-width basis against its prefix table mod the
                // target prime (table built per work item, O(width) —
                // amortized over the n-coefficient fold below).
                let src = self.width_ctx(width)?;
                let tgt = self.width_ctx(target)?;
                let m_t = &tgt.mods[channel];
                let table = src.crt.prefixes_mod(tgt.crt.moduli()[channel]);
                let mut residues = vec![0_u128; width];
                Ok((0..n)
                    .map(|j| {
                        for (r, ch) in residues.iter_mut().zip(a) {
                            *r = ch[j];
                        }
                        src.crt
                            .digits(&residues)
                            .iter()
                            .zip(&table)
                            .fold(0_u128, |acc, (&d, &pre)| {
                                m_t.add_mod(acc, m_t.mul_mod(m_t.reduce(d), pre))
                            })
                    })
                    .collect())
            }
        }
    }

    fn join_at(
        &self,
        width: usize,
        channels: Vec<Vec<u128>>,
    ) -> Result<crate::Coefficients, Error> {
        if width == self.channels() {
            return self.join(channels);
        }
        let ctx = self.width_ctx(width)?;
        recombine_with(&ctx.crt, &channels, self.n).map(crate::Coefficients::Big)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend;
    use crate::plan_cache::PlanCache;
    use mqx_bignum::crt::CrtError;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 64;

    fn coeffs(ring: &RnsRing, seed: u64) -> Vec<BigUint> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..ring.size())
            .map(|_| BigUint::random_below(&mut rng, ring.product_modulus()))
            .collect()
    }

    #[test]
    fn residue_roundtrip_is_identity() {
        let ring = RnsRing::with_moduli(&[primes::Q62, primes::Q30, primes::Q14], N).unwrap();
        let xs = coeffs(&ring, 0xC0FFEE);
        let channels = ring.to_residues(&xs).unwrap();
        assert_eq!(channels.len(), 3);
        assert_eq!(ring.recombine(&channels).unwrap(), xs);
    }

    #[test]
    fn negacyclic_matches_big_schoolbook() {
        let ring = RnsRing::with_moduli(&[primes::Q62, primes::Q30], N).unwrap();
        assert!(ring.supports_negacyclic());
        let a = coeffs(&ring, 1);
        let b = coeffs(&ring, 2);
        let expected =
            mqx_ntt::polymul::schoolbook_negacyclic_big(&a, &b, &ring.product_modulus().clone());
        assert_eq!(ring.polymul_negacyclic(&a, &b).unwrap(), expected);
    }

    #[test]
    fn generated_basis_builds_distinct_word_sized_channels() {
        let ring = RnsRing::auto(3, N).unwrap();
        assert_eq!(ring.channels(), 3);
        // The basis is the prime chain for (62 bits, 2-adicity log₂(2n)).
        let adicity = (N as u32).trailing_zeros() + 1;
        assert_eq!(
            ring.moduli(),
            primes::ntt_prime_chain(62, adicity, 3).unwrap()
        );
        assert!(ring.product_modulus().bits() > 128, "wider than u128");
        assert!(ring.supports_negacyclic());
        let mut sorted = ring.moduli().to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "distinct moduli");
    }

    #[test]
    fn per_channel_backends_can_differ() {
        let portable = backend::by_name("portable").unwrap();
        let auto = backend::default_backend();
        let ring = RnsRing::builder(N)
            .moduli(&[primes::Q62, primes::Q30])
            .channel_backends(vec![Arc::clone(&portable), auto])
            .build()
            .unwrap();
        assert_eq!(ring.backend_names()[0], "portable");
        assert_eq!(
            ring.rings()[1].backend().name(),
            backend::default_backend().name()
        );
    }

    #[test]
    fn builder_errors_are_specific() {
        assert!(matches!(
            RnsRingBuilder::new(N).build().unwrap_err(),
            Error::Crt(CrtError::EmptyBasis)
        ));
        assert!(matches!(
            RnsRing::with_moduli(&[primes::Q62, primes::Q62], N).unwrap_err(),
            Error::Crt(CrtError::NotCoprime { i: 0, j: 1 })
        ));
        assert!(matches!(
            RnsRing::builder(N)
                .generated_basis(14, 100)
                .build()
                .unwrap_err(),
            Error::BasisGeneration { count: 100, .. }
        ));
        assert!(matches!(
            RnsRing::builder(N)
                .moduli(&[primes::Q62, primes::Q30])
                .channel_backends(vec![backend::default_backend()])
                .build()
                .unwrap_err(),
            Error::ChannelCountMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn unreduced_coefficients_are_rejected() {
        let ring = RnsRing::with_moduli(&[primes::Q30, primes::Q14], N).unwrap();
        let mut a = coeffs(&ring, 3);
        a[7] = ring.product_modulus().clone();
        let b = coeffs(&ring, 4);
        assert!(matches!(
            ring.polymul_negacyclic(&a, &b).unwrap_err(),
            Error::CoefficientOutOfRange { index: 7 }
        ));
    }

    #[test]
    fn length_mismatches_are_rejected() {
        let ring = RnsRing::with_moduli(&[primes::Q62, primes::Q30], N).unwrap();
        let a = coeffs(&ring, 5);
        let short = a[..N - 1].to_vec();
        assert!(matches!(
            ring.polymul_cyclic(&a, &short).unwrap_err(),
            Error::LengthMismatch { got, .. } if got == N - 1
        ));
        assert!(matches!(
            ring.recombine(&[vec![0; N]]).unwrap_err(),
            Error::ChannelCountMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn target_bits_exact_multiple_uses_full_width_channels() {
        // 186 = 3 × 62: three full-width channels, no overshoot in count.
        let ring = RnsRing::builder(N)
            .target_modulus_bits(186)
            .build()
            .unwrap();
        assert_eq!(ring.channels(), 3);
        assert!(ring.product_modulus().bits() >= 186);
        assert!(ring.supports_negacyclic());
        for &q in ring.moduli() {
            assert_eq!(128 - q.leading_zeros(), 62, "full-width channel {q}");
        }
    }

    #[test]
    fn target_bits_balances_widths_when_over_provisioned() {
        // 80 bits needs two channels; balanced widths sit near 40 bits,
        // not one 62-bit plus one tiny channel.
        let ring = RnsRing::builder(N).target_modulus_bits(80).build().unwrap();
        assert_eq!(ring.channels(), 2);
        assert!(ring.product_modulus().bits() >= 80);
        for &q in ring.moduli() {
            let w = 128 - q.leading_zeros();
            assert!((38..=44).contains(&w), "balanced width, got {w} bits");
        }
    }

    #[test]
    fn target_bits_single_channel_and_tiny_targets() {
        let ring = RnsRing::builder(N).target_modulus_bits(30).build().unwrap();
        assert_eq!(ring.channels(), 1);
        assert!(ring.product_modulus().bits() >= 30);
        // A target below the 2-adicity floor still yields a valid
        // (over-provisioned) NTT-friendly channel.
        let tiny = RnsRing::builder(N).target_modulus_bits(1).build().unwrap();
        assert_eq!(tiny.channels(), 1);
        assert!(tiny.supports_negacyclic());
    }

    #[test]
    fn target_bits_product_actually_multiplies_correctly() {
        let ring = RnsRing::builder(N)
            .target_modulus_bits(124)
            .build()
            .unwrap();
        assert!(ring.product_modulus().bits() >= 124);
        let a = coeffs(&ring, 7);
        let b = coeffs(&ring, 8);
        let expected =
            mqx_ntt::polymul::schoolbook_negacyclic_big(&a, &b, &ring.product_modulus().clone());
        assert_eq!(ring.polymul_negacyclic(&a, &b).unwrap(), expected);
    }

    #[test]
    fn channels_share_plans_through_the_builder_cache() {
        let cache = Arc::new(PlanCache::new());
        let build = || {
            RnsRing::builder(N)
                .moduli(&[primes::Q62, primes::Q30])
                .plan_cache(Arc::clone(&cache))
                .build()
                .unwrap()
        };
        let _first = build();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 2));
        let _second = build();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 2), "second ring: all hits");
    }
}
