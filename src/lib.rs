//! Facade crate for the MQX reproduction workspace.
//!
//! This crate re-exports the workspace libraries under one roof so the
//! examples and integration tests (and downstream users who want
//! everything) need a single dependency:
//!
//! * [`core`] — double-word (128-bit) Barrett modular arithmetic and
//!   number theory ([`mqx_core`]).
//! * [`simd`] — vector engines (portable/AVX2/AVX-512) and the MQX ISA
//!   extension with PISA performance projection ([`mqx_simd`]).
//! * [`ntt`] — number theoretic transforms, Pease constant-geometry
//!   dataflow, polynomial multiplication ([`mqx_ntt`]).
//! * [`blas`] — vector kernels over 128-bit residues ([`mqx_blas`]).
//! * [`bignum`] — the arbitrary-precision GMP-substitute ([`mqx_bignum`]).
//! * [`baseline`] — the OpenFHE-style and GMP-style baselines
//!   ([`mqx_baseline`]).
//! * [`mca`] — the LLVM-MCA-style port-pressure model ([`mqx_mca`]).
//! * [`roofline`] — the speed-of-light multi-core model ([`mqx_roofline`]).
//!
//! # Quickstart
//!
//! ```
//! use mqx::core::{primes, Modulus};
//! use mqx::ntt::NttPlan;
//!
//! let m = Modulus::new_prime(primes::Q124)?;
//! let plan = NttPlan::new(&m, 256)?;
//! let mut data: Vec<u128> = (0..256_u64).map(u128::from).collect();
//! let original = data.clone();
//! plan.forward_scalar(&mut data);
//! plan.inverse_scalar(&mut data);
//! assert_eq!(data, original);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use mqx_baseline as baseline;
pub use mqx_bignum as bignum;
pub use mqx_blas as blas;
pub use mqx_core as core;
pub use mqx_mca as mca;
pub use mqx_ntt as ntt;
pub use mqx_roofline as roofline;
pub use mqx_simd as simd;
