//! Facade crate for the MQX reproduction workspace: the runtime-dispatched
//! [`Ring`]/[`Backend`] API over every engine tier, plus re-exports of the
//! workspace libraries.
//!
//! # The front door
//!
//! The engine crates are generic over [`simd::SimdEngine`] at compile
//! time. This crate erases that type parameter behind the object-safe
//! [`Backend`] trait and discovers the tiers the *running machine*
//! supports via runtime CPU feature detection — the same binary uses
//! AVX-512 on a server and the portable engine in a container, with no
//! rebuild and no `cfg(target_feature)` in caller code:
//!
//! * [`Ring::auto`] — picks the fastest tier **as measured on this
//!   machine**: a one-shot startup micro-calibration ranks every
//!   consumable backend by observed ns/butterfly (memoized; see
//!   [`backend::calibration`]), with `MQX_BACKEND=<name>` pinning a
//!   tier and `MQX_CALIBRATE=off` restoring the static
//!   detected+compiled rule;
//! * [`Ring::with_backend_name`] / [`RingBuilder`] — pins a tier;
//! * [`backend::available`] — enumerates what this host offers (the
//!   registry is built once per process and memoized);
//! * [`RnsRing`] — shards a wider-than-word modulus across word-sized
//!   residue channels (one backend-dispatched ring each) with CRT
//!   recombination;
//! * [`PolyRing`] — the object-safe trait unifying both ring kinds, so
//!   callers are generic over single- and multi-modulus rings;
//! * [`RingOp`] — the executor-facing ciphertext-pipeline vocabulary
//!   (polymul, add, sub, modulus rescale, RNS basis extension), each op
//!   decomposed into independent per-channel work items through the
//!   [`PolyRing`] `channel_apply`/`op_join` contract;
//! * [`OpGraph`] — dependency graphs of [`RingOp`] nodes executed as
//!   *one* request with resident residues: intermediates stay
//!   channel-major between nodes and the CRT join runs exactly once, at
//!   the graph output (canned composite kernels:
//!   [`OpGraph::relinearize`], [`OpGraph::multiply_accumulate`]);
//! * [`RingExecutor`] — a work-stealing thread-pool serving queues of
//!   [`RingRequest`]s (any [`RingOp`]) against any shared
//!   `Arc<dyn PolyRing>`, with serving QoS: [`Priority`] classes drained
//!   strictly High → Normal → Low, per-request deadlines shed at
//!   dequeue, and cooperative cancellation ([`SubmitOptions`] /
//!   [`RequestHandle::cancel`] / detached [`Canceller`]s);
//! * [`frontdoor`] — the admission-controlled async façade a network
//!   service fronts the executor with:
//!   [`FrontDoor`](frontdoor::FrontDoor) submits resolve through
//!   [`Future`](std::future::Future)-based
//!   [`AsyncRequestHandle`](frontdoor::AsyncRequestHandle)s (std wakers
//!   only; a minimal [`frontdoor::block_on`] ships in-tree), per-class
//!   bounded queue depth sheds overload with [`Error::Overloaded`],
//!   `reserve()` permits give backpressure, and
//!   [`AdmissionStats`](frontdoor::AdmissionStats) reconciles every
//!   admission decision;
//! * [`plan_cache`] — the keyed (optionally capacity-bounded) NTT-plan
//!   cache behind every ring open.
//!
//! Rings are immutable, shareable handles: every hot-path method takes
//! `&self` (per-call scratch comes from an internal lock-free pool), so
//! an `Arc<Ring>` or `Arc<RnsRing>` can be hammered from any number of
//! threads with bit-identical results.
//!
//! ```
//! use mqx::{core::primes, Ring};
//!
//! let ring = Ring::auto(primes::Q124, 1024)?;
//! println!("running on the {} backend", ring.backend().name());
//!
//! let f: Vec<u128> = (0..1024_u64).map(|i| u128::from(i % 17)).collect();
//! let g: Vec<u128> = (0..1024_u64).map(|i| u128::from(i % 23)).collect();
//! let product = ring.polymul_negacyclic(&f, &g)?;
//! assert_eq!(product.len(), 1024);
//! # Ok::<(), mqx::Error>(())
//! ```
//!
//! # The workspace libraries
//!
//! * [`core`] — double-word (128-bit) Barrett modular arithmetic and
//!   number theory ([`mqx_core`]).
//! * [`simd`] — vector engines (portable/AVX2/AVX-512) and the MQX ISA
//!   extension with PISA performance projection ([`mqx_simd`]).
//! * [`ntt`] — number theoretic transforms, Pease constant-geometry
//!   dataflow, polynomial multiplication ([`mqx_ntt`]).
//! * [`blas`] — vector kernels over 128-bit residues ([`mqx_blas`]).
//! * [`bignum`] — the arbitrary-precision GMP-substitute ([`mqx_bignum`]).
//! * [`baseline`] — the OpenFHE-style and GMP-style baselines
//!   ([`mqx_baseline`]).
//! * [`mca`] — the LLVM-MCA-style port-pressure model ([`mqx_mca`]).
//! * [`roofline`] — the speed-of-light multi-core model ([`mqx_roofline`]).
//!
//! # Lower-level quickstart
//!
//! The generic layers remain public for code that wants to monomorphize
//! over one engine:
//!
//! ```
//! use mqx::core::{primes, Modulus};
//! use mqx::ntt::NttPlan;
//!
//! let m = Modulus::new_prime(primes::Q124)?;
//! let plan = NttPlan::new(&m, 256)?;
//! let mut data: Vec<u128> = (0..256_u64).map(u128::from).collect();
//! let original = data.clone();
//! plan.forward_scalar(&mut data);
//! plan.inverse_scalar(&mut data);
//! assert_eq!(data, original);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod backend;
mod error;
mod executor;
pub mod frontdoor;
mod graph;
mod ops;
pub mod plan_cache;
mod poly;
mod ring;
mod rns;
mod scratch;

pub use backend::{Backend, Tier};
pub use error::Error;
pub use executor::{
    Canceller, PolymulRequest, Priority, RequestHandle, RingExecutor, RingRequest, SubmitOptions,
};
pub use graph::{GraphNode, OpGraph, OpGraphBuilder, Operand};
pub use ops::RingOp;
pub use plan_cache::PlanCache;
pub use poly::{Coefficients, PolyOp, PolyRing};
pub use ring::{lazy_enabled, Ring, RingBuilder};
pub use rns::{RnsRing, RnsRingBuilder};

pub use mqx_baseline as baseline;
pub use mqx_bignum as bignum;
pub use mqx_blas as blas;
pub use mqx_core as core;
pub use mqx_mca as mca;
pub use mqx_ntt as ntt;
pub use mqx_roofline as roofline;
pub use mqx_simd as simd;
