//! The executor-facing ring-operation vocabulary.
//!
//! PRs 1–5 built a serving substrate — backend registry, RNS sharding,
//! a work-stealing [`RingExecutor`](crate::RingExecutor) with QoS — that
//! spoke exactly one verb: polynomial multiplication. Production FHE/ZK
//! traffic is a *graph* of ring operations: keyswitching-style polymul
//! chains, ciphertext addition, modulus rescaling, RNS basis extension.
//! [`RingOp`] names that vocabulary, and the
//! [`PolyRing`](crate::PolyRing) `channel_apply`/`op_join` contract
//! decomposes every op into independent per-channel work items so the
//! executor's fan-out/steal/join path handles them all uniformly.
//!
//! # The vocabulary
//!
//! | Op | Arity | Output channels | Join |
//! |----|-------|-----------------|------|
//! | [`Polymul`](RingOp::Polymul) | 2 | `k` | CRT over the input basis |
//! | [`Add`](RingOp::Add) / [`Sub`](RingOp::Sub) | 2 | `k` | CRT over the input basis |
//! | [`Rescale`](RingOp::Rescale) | 1 | `k − 1` | CRT over the basis minus its last channel |
//! | [`BasisExtend`](RingOp::BasisExtend) | 1 | `k + extra` | CRT over the extended basis |
//!
//! `Rescale` drops the last RNS channel with the standard
//! divide-and-round correction: for `x < Q = Q′·q` it computes
//! `round(x / q) mod Q′` channel-wise, using only word arithmetic and
//! the precomputed constants `(q mod qᵢ)⁻¹`. `BasisExtend` re-expresses
//! the residues in a larger coprime basis via the Garner mixed-radix
//! digits already computed by `mqx_bignum`'s CRT machinery — the
//! round-trip `extend ∘ recombine` is the identity, which is exactly
//! what the oracle tests assert.
//!
//! # Example
//!
//! A polymul → rescale → add pipeline over a 3-channel RNS ring:
//!
//! ```
//! use mqx::{Coefficients, PolyOp, PolyRing, RingOp, RnsRing};
//! use mqx::bignum::BigUint;
//!
//! let ring = RnsRing::auto(3, 64)?;
//! let q = ring.product_modulus().clone();
//! let a = Coefficients::from(vec![BigUint::from(7_u64); 64]);
//! let b = Coefficients::from(vec![BigUint::from(5_u64); 64]);
//!
//! let product = ring.apply(&RingOp::Polymul(PolyOp::Negacyclic), &a, Some(&b))?;
//! let rescaled = ring.apply(&RingOp::Rescale, &product, None)?;
//! let masked = ring.apply(&RingOp::Add, &rescaled, Some(&rescaled))?;
//! assert_eq!(masked.len(), 64);
//! # let _ = q;
//! # Ok::<(), mqx::Error>(())
//! ```

use crate::poly::PolyOp;
use std::fmt;

/// One operation in the executor's ciphertext-pipeline vocabulary.
///
/// Each variant carries a per-channel decomposition contract (see
/// [`PolyRing::channel_apply`](crate::PolyRing::channel_apply)): the
/// executor splits the operands once, fans one work item per *output*
/// channel into the work-stealing deques, and joins the channel results
/// with [`PolyRing::op_join`](crate::PolyRing::op_join) — CRT
/// recombination only for the ops that need it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RingOp {
    /// Polynomial multiplication (cyclic or negacyclic) — today's
    /// behavior, source-compatible with every existing polymul call
    /// site. Binary; output basis equals the input basis.
    Polymul(PolyOp),
    /// Coefficient-wise modular addition. Binary; output basis equals
    /// the input basis.
    Add,
    /// Coefficient-wise modular subtraction (first minus second).
    /// Binary; output basis equals the input basis.
    Sub,
    /// Drop the last RNS channel with the divide-and-round correction:
    /// `x ↦ round(x / q_last) mod (Q / q_last)`. Unary; needs at least
    /// two channels, output basis is the input basis minus its last
    /// prime.
    Rescale,
    /// Re-express the residues in a larger coprime basis (the input
    /// primes plus `extra_channels` freshly generated NTT primes) via
    /// Garner mixed-radix digits. Unary; the recombined value is
    /// unchanged — only its representation widens.
    BasisExtend {
        /// How many coprime channels to append to the basis.
        extra_channels: usize,
    },
}

impl RingOp {
    /// A short lowercase name for diagnostics, artifacts, and errors.
    pub fn name(&self) -> &'static str {
        match self {
            RingOp::Polymul(PolyOp::Cyclic) => "polymul-cyclic",
            RingOp::Polymul(PolyOp::Negacyclic) => "polymul-negacyclic",
            RingOp::Add => "add",
            RingOp::Sub => "sub",
            RingOp::Rescale => "rescale",
            RingOp::BasisExtend { .. } => "basis-extend",
        }
    }

    /// The number of operands the op consumes (1 or 2).
    pub fn arity(&self) -> usize {
        if self.is_binary() {
            2
        } else {
            1
        }
    }

    /// Whether the op consumes two operands.
    pub fn is_binary(&self) -> bool {
        matches!(self, RingOp::Polymul(_) | RingOp::Add | RingOp::Sub)
    }
}

impl fmt::Display for RingOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<PolyOp> for RingOp {
    fn from(op: PolyOp) -> Self {
        RingOp::Polymul(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_arity() {
        let ops = [
            (RingOp::Polymul(PolyOp::Cyclic), "polymul-cyclic", 2),
            (RingOp::Polymul(PolyOp::Negacyclic), "polymul-negacyclic", 2),
            (RingOp::Add, "add", 2),
            (RingOp::Sub, "sub", 2),
            (RingOp::Rescale, "rescale", 1),
            (RingOp::BasisExtend { extra_channels: 1 }, "basis-extend", 1),
        ];
        for (op, name, arity) in ops {
            assert_eq!(op.name(), name);
            assert_eq!(op.to_string(), name);
            assert_eq!(op.arity(), arity);
            assert_eq!(op.is_binary(), arity == 2);
        }
    }

    #[test]
    fn polymul_lifts_from_poly_op() {
        assert_eq!(
            RingOp::from(PolyOp::Negacyclic),
            RingOp::Polymul(PolyOp::Negacyclic)
        );
    }
}
