//! The unified facade error type.
//!
//! Every fallible operation behind the [`Ring`](crate::Ring) /
//! [`Backend`](crate::Backend) front door returns [`Error`], which wraps
//! the layer-specific errors (`ModulusError` from `mqx_core`, `NttError`
//! from `mqx_ntt`) and adds the dispatch-layer failures (unknown backend
//! name, negacyclic operation on a ring without a 2n-th root).

use mqx_bignum::crt::CrtError;
use mqx_core::ModulusError;
use mqx_ntt::NttError;
use std::fmt;

/// Any error the facade API can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The modulus was rejected (too small, too wide, or not prime).
    Modulus(ModulusError),
    /// The NTT plan could not be built for the requested size.
    Ntt(NttError),
    /// No registered backend has the requested name. Carries the names
    /// that *are* available on this host, for actionable messages.
    UnknownBackend {
        /// The rejected name.
        name: String,
        /// Names the registry currently offers.
        available: Vec<&'static str>,
    },
    /// The `MQX_BACKEND` pin names a non-consumable backend (the PISA
    /// projection: representative cost, deliberately wrong numbers).
    /// Auto-selected rings must produce consumable values, so the
    /// ambient pin is rejected; pinning a projection backend explicitly
    /// via `RingBuilder::backend_name` remains available for
    /// measurement.
    NonConsumableBackend {
        /// The rejected (registered but non-consumable) name.
        name: String,
    },
    /// A negacyclic operation was requested on a ring whose field has no
    /// `2n`-th root of unity.
    NoNegacyclicSupport {
        /// The ring size.
        n: usize,
    },
    /// Input length does not match the ring size.
    LengthMismatch {
        /// The ring (and therefore expected input) size.
        expected: usize,
        /// The offending input length.
        got: usize,
    },
    /// An RNS basis was rejected (empty, a modulus below 2, or moduli
    /// sharing a factor).
    Crt(CrtError),
    /// The requested NTT prime chain could not be generated.
    BasisGeneration {
        /// Requested prime width in bits.
        bits: u32,
        /// Requested minimum 2-adicity of `q − 1`.
        two_adicity: u32,
        /// Requested number of channels.
        count: usize,
    },
    /// A per-channel argument list does not match the number of residue
    /// channels.
    ChannelCountMismatch {
        /// The basis channel count.
        expected: usize,
        /// The offending list length.
        got: usize,
    },
    /// A coefficient is at or above the ring's (product) modulus — a
    /// word residue `≥ q` or a big integer `≥ Q` — so reducing it would
    /// silently alias a different canonical value.
    CoefficientOutOfRange {
        /// Index of the offending coefficient.
        index: usize,
    },
    /// A [`Coefficients`](crate::Coefficients) value is not in the
    /// representation this ring consumes (word-sized residues for
    /// `Ring`, big integers for `RnsRing`).
    CoefficientKind {
        /// The representation the ring accepts.
        expected: &'static str,
        /// The representation that was passed.
        got: &'static str,
    },
    /// A [`RingExecutor`](crate::RingExecutor) was requested with zero
    /// worker threads.
    NoWorkers,
    /// An executor worker panicked while running one residue channel of
    /// a request; the request is completed with this error instead of
    /// deadlocking its handle.
    ChannelPanicked {
        /// The residue channel whose kernel panicked.
        channel: usize,
    },
    /// An executor worker panicked while joining a request's channel
    /// products (the [`PolyRing::join`](crate::PolyRing::join) step);
    /// the request is completed with this error instead of deadlocking
    /// its handle.
    JoinPanicked,
    /// A channel index passed to
    /// [`PolyRing::channel_polymul`](crate::PolyRing::channel_polymul)
    /// is out of range for the ring.
    ChannelOutOfRange {
        /// The offending channel index.
        channel: usize,
        /// The ring's channel count.
        channels: usize,
    },
    /// The requested [`RingOp`](crate::RingOp) is not supported by this
    /// ring (e.g. `Rescale` needs at least two RNS channels, and a
    /// single-modulus `Ring` has no channel structure to drop or
    /// extend).
    UnsupportedOp {
        /// The rejected operation's name.
        op: &'static str,
        /// Why the ring rejected it.
        reason: &'static str,
    },
    /// The number of operands does not match the operation's arity
    /// (binary ops such as `Add` need two operands, unary ops such as
    /// `Rescale` exactly one).
    OperandCountMismatch {
        /// The operation's name.
        op: &'static str,
        /// The arity the operation requires.
        expected: usize,
        /// The number of operands that were passed.
        got: usize,
    },
    /// The two operands of a binary operation have different lengths;
    /// rejected at submit instead of panicking inside a worker.
    OperandLengthMismatch {
        /// Length of the first operand.
        a: usize,
        /// Length of the second operand.
        b: usize,
    },
    /// The request was cancelled via
    /// [`RequestHandle::cancel`](crate::RequestHandle::cancel) before it
    /// finished executing; its remaining channels were skipped.
    Cancelled,
    /// The request's deadline passed before it finished executing (it
    /// was shed at submit or at dequeue instead of burning worker
    /// time).
    DeadlineExceeded,
    /// An [`OpGraph`](crate::OpGraph) contains a dependency cycle: no
    /// topological order exists, so no executor schedule can satisfy its
    /// edges. Rejected at graph build, before anything is queued.
    GraphCycle,
    /// An [`OpGraph`](crate::OpGraph) failed structural validation at
    /// build (a dangling operand reference, an unused intermediate node,
    /// operands whose channel bases cannot match, an empty graph, …).
    InvalidGraph {
        /// Index of the offending node.
        node: usize,
        /// What the node violates.
        reason: &'static str,
    },
    /// The request was shed at admission: its priority class's bounded
    /// queue in a [`FrontDoor`](crate::frontdoor::FrontDoor) was
    /// already at its configured depth, so the request was refused
    /// immediately — zero channels executed, zero caller blocking —
    /// instead of growing the queue without bound. Well-behaved clients
    /// can opt into backpressure instead via
    /// [`FrontDoor::reserve`](crate::frontdoor::FrontDoor::reserve).
    Overloaded {
        /// The priority class whose queue was full.
        class: crate::executor::Priority,
        /// That class's configured depth limit.
        depth: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Modulus(e) => write!(f, "{e}"),
            Error::Ntt(e) => write!(f, "{e}"),
            Error::UnknownBackend { name, available } => {
                write!(
                    f,
                    "no backend named {name:?} on this host (available: {})",
                    available.join(", ")
                )
            }
            Error::NonConsumableBackend { name } => write!(
                f,
                "backend {name:?} is non-consumable (PISA projection: representative cost, \
                 wrong numbers) and cannot serve auto-selected rings; pin it explicitly \
                 via RingBuilder::backend_name for measurement"
            ),
            Error::NoNegacyclicSupport { n } => write!(
                f,
                "ring of size {n} has no 2n-th root of unity; negacyclic operations unavailable"
            ),
            Error::LengthMismatch { expected, got } => {
                write!(f, "input length {got} does not match ring size {expected}")
            }
            Error::Crt(e) => write!(f, "{e}"),
            Error::BasisGeneration {
                bits,
                two_adicity,
                count,
            } => write!(
                f,
                "cannot generate {count} distinct {bits}-bit NTT primes with 2-adicity {two_adicity}"
            ),
            Error::ChannelCountMismatch { expected, got } => write!(
                f,
                "per-channel list has {got} entries but the basis has {expected} channels"
            ),
            Error::CoefficientOutOfRange { index } => write!(
                f,
                "coefficient {index} is not reduced below the RNS product modulus"
            ),
            Error::CoefficientKind { expected, got } => write!(
                f,
                "ring consumes {expected} coefficients but was given {got} coefficients"
            ),
            Error::NoWorkers => write!(f, "a ring executor needs at least one worker thread"),
            Error::ChannelPanicked { channel } => write!(
                f,
                "executor worker panicked while running residue channel {channel}"
            ),
            Error::JoinPanicked => write!(
                f,
                "executor worker panicked while joining a request's channel products"
            ),
            Error::ChannelOutOfRange { channel, channels } => write!(
                f,
                "channel index {channel} is out of range for a ring with {channels} channels"
            ),
            Error::UnsupportedOp { op, reason } => {
                write!(f, "ring does not support the {op} operation: {reason}")
            }
            Error::OperandCountMismatch { op, expected, got } => write!(
                f,
                "the {op} operation takes {expected} operand(s) but was given {got}"
            ),
            Error::OperandLengthMismatch { a, b } => write!(
                f,
                "binary operation operands have mismatched lengths ({a} vs {b})"
            ),
            Error::Cancelled => write!(f, "request was cancelled before it finished executing"),
            Error::DeadlineExceeded => write!(
                f,
                "request deadline passed before it finished executing; it was shed"
            ),
            Error::GraphCycle => write!(
                f,
                "op graph contains a dependency cycle; no execution order can satisfy its edges"
            ),
            Error::InvalidGraph { node, reason } => {
                write!(f, "op graph node {node} is invalid: {reason}")
            }
            Error::Overloaded { class, depth } => write!(
                f,
                "request shed at admission: the {class} class queue is at its depth limit \
                 ({depth}); retry later or reserve() a permit for backpressure"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Modulus(e) => Some(e),
            Error::Ntt(e) => Some(e),
            Error::Crt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CrtError> for Error {
    fn from(e: CrtError) -> Self {
        Error::Crt(e)
    }
}

impl From<ModulusError> for Error {
    fn from(e: ModulusError) -> Self {
        Error::Modulus(e)
    }
}

impl From<NttError> for Error {
    fn from(e: NttError) -> Self {
        Error::Ntt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn wraps_layer_errors_with_sources() {
        let e = Error::from(ModulusError::TooSmall);
        assert!(e.source().is_some());
        assert_eq!(e.to_string(), ModulusError::TooSmall.to_string());

        let e = Error::from(NttError::SizeTooSmall);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("at least 2"));
    }

    #[test]
    fn dispatch_errors_are_actionable() {
        let e = Error::UnknownBackend {
            name: "gpu".into(),
            available: vec!["portable", "avx512"],
        };
        let msg = e.to_string();
        assert!(msg.contains("gpu") && msg.contains("portable"), "{msg}");
        assert!(e.source().is_none());

        let e = Error::LengthMismatch {
            expected: 1024,
            got: 7,
        };
        assert!(e.to_string().contains("1024"));

        let e = Error::NonConsumableBackend {
            name: "mqx-pisa".into(),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("mqx-pisa") && msg.contains("non-consumable"),
            "{msg}"
        );
        assert!(e.source().is_none());
    }

    #[test]
    fn rns_errors_are_actionable() {
        let e = Error::from(CrtError::NotCoprime { i: 0, j: 2 });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("not coprime"), "{e}");

        let e = Error::BasisGeneration {
            bits: 62,
            two_adicity: 20,
            count: 99,
        };
        let msg = e.to_string();
        assert!(msg.contains("99") && msg.contains("62"), "{msg}");

        let e = Error::ChannelCountMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("3 channels"), "{e}");

        let e = Error::CoefficientOutOfRange { index: 17 };
        assert!(e.to_string().contains("17"), "{e}");
    }

    #[test]
    fn executor_errors_are_actionable() {
        let e = Error::CoefficientKind {
            expected: "word",
            got: "big",
        };
        let msg = e.to_string();
        assert!(msg.contains("word") && msg.contains("big"), "{msg}");
        assert!(e.source().is_none());

        assert!(Error::NoWorkers.to_string().contains("at least one"));

        let e = Error::ChannelPanicked { channel: 2 };
        assert!(e.to_string().contains("channel 2"), "{e}");

        assert!(Error::JoinPanicked.to_string().contains("joining"));

        let e = Error::ChannelOutOfRange {
            channel: 3,
            channels: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('2'), "{msg}");
    }

    #[test]
    fn op_errors_are_actionable() {
        let e = Error::UnsupportedOp {
            op: "rescale",
            reason: "needs at least two RNS channels",
        };
        let msg = e.to_string();
        assert!(msg.contains("rescale") && msg.contains("two RNS"), "{msg}");
        assert!(e.source().is_none());

        let e = Error::OperandCountMismatch {
            op: "add",
            expected: 2,
            got: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("add") && msg.contains("2 operand"), "{msg}");

        let e = Error::OperandLengthMismatch { a: 1024, b: 512 };
        let msg = e.to_string();
        assert!(msg.contains("1024") && msg.contains("512"), "{msg}");
    }

    #[test]
    fn graph_errors_are_actionable() {
        let e = Error::GraphCycle;
        assert!(e.to_string().contains("cycle"), "{e}");
        assert!(e.source().is_none());

        let e = Error::InvalidGraph {
            node: 4,
            reason: "operand references a later node",
        };
        let msg = e.to_string();
        assert!(
            msg.contains("node 4") && msg.contains("later node"),
            "{msg}"
        );
        assert!(e.source().is_none());
    }

    #[test]
    fn qos_errors_are_actionable() {
        let e = Error::Cancelled;
        assert!(e.to_string().contains("cancelled"), "{e}");
        assert!(e.source().is_none());

        let e = Error::DeadlineExceeded;
        let msg = e.to_string();
        assert!(msg.contains("deadline") && msg.contains("shed"), "{msg}");
        assert!(e.source().is_none());

        let e = Error::Overloaded {
            class: crate::executor::Priority::Low,
            depth: 2,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("low") && msg.contains('2') && msg.contains("reserve"),
            "{msg}"
        );
        assert!(e.source().is_none());
    }
}
