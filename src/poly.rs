//! The object-safe [`PolyRing`] abstraction: one polynomial-ring
//! interface over both the single-modulus [`Ring`](crate::Ring) and the
//! sharded multi-modulus [`RnsRing`](crate::RnsRing).
//!
//! Callers that only need "multiply two polynomials in some ring" —
//! batch executors, benches, generic tests — program against
//! `Arc<dyn PolyRing>` and stop caring whether the modulus fits a
//! machine word. The trait also exposes the *channel* structure
//! (`channels`, [`PolyRing::split`], [`PolyRing::channel_polymul`],
//! [`PolyRing::join`]) so a scheduler can fan one request out into
//! independent word-sized work items: a `Ring` is one channel, an
//! `RnsRing` is `k` channels joined by CRT recombination. That is
//! exactly how [`RingExecutor`](crate::RingExecutor) turns a queue of
//! requests into `channels × batch` work-stealing items.
//!
//! ```
//! use std::sync::Arc;
//! use mqx::{core::primes, Coefficients, PolyOp, PolyRing, Ring, RnsRing};
//!
//! let word: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q124, 64)?);
//! let wide: Arc<dyn PolyRing> = Arc::new(RnsRing::auto(3, 64)?);
//! for ring in [&word, &wide] {
//!     assert_eq!(ring.size(), 64);
//!     assert!(ring.supports_negacyclic());
//! }
//! assert_eq!(word.channels(), 1);
//! assert_eq!(wide.channels(), 3);
//! assert!(wide.modulus_bits() > word.modulus_bits());
//!
//! let a = Coefficients::Word(vec![1; 64]);
//! let b = Coefficients::Word(vec![2; 64]);
//! let product = word.polymul(PolyOp::Cyclic, &a, &b)?;
//! assert_eq!(product.len(), 64);
//! # Ok::<(), mqx::Error>(())
//! ```

use crate::error::Error;
use crate::graph::{OpGraph, Operand};
use crate::ops::RingOp;
use mqx_bignum::BigUint;

/// Which quotient ring a polynomial product runs in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolyOp {
    /// `ℤ_q[x]/(xⁿ − 1)` — plain convolution.
    Cyclic,
    /// `ℤ_q[x]/(xⁿ + 1)` — the RLWE workhorse (needs a `2n`-th root of
    /// unity in every channel field).
    Negacyclic,
}

/// Polynomial coefficients in the representation a ring natively
/// accepts: word-sized residues for a single-modulus [`Ring`], wide
/// integers for a multi-modulus [`RnsRing`].
///
/// [`Ring`]: crate::Ring
/// [`RnsRing`]: crate::RnsRing
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Coefficients {
    /// Residues below a word-sized modulus (`u128` with the top bits
    /// clear), as [`Ring`](crate::Ring) consumes.
    Word(Vec<u128>),
    /// Big-integer coefficients reduced below an RNS product modulus,
    /// as [`RnsRing`](crate::RnsRing) consumes.
    Big(Vec<BigUint>),
}

impl Coefficients {
    /// Number of coefficients.
    pub fn len(&self) -> usize {
        match self {
            Coefficients::Word(v) => v.len(),
            Coefficients::Big(v) => v.len(),
        }
    }

    /// Whether the polynomial has no coefficients.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The representation's name, for error messages: `"word"` or
    /// `"big"`.
    pub fn kind(&self) -> &'static str {
        match self {
            Coefficients::Word(_) => "word",
            Coefficients::Big(_) => "big",
        }
    }

    /// The word-sized residues, if this is the word representation.
    pub fn as_words(&self) -> Option<&[u128]> {
        match self {
            Coefficients::Word(v) => Some(v),
            Coefficients::Big(_) => None,
        }
    }

    /// The big-integer coefficients, if this is the wide representation.
    pub fn as_bigs(&self) -> Option<&[BigUint]> {
        match self {
            Coefficients::Big(v) => Some(v),
            Coefficients::Word(_) => None,
        }
    }

    /// Consumes into word-sized residues, if this is the word
    /// representation.
    pub fn into_words(self) -> Option<Vec<u128>> {
        match self {
            Coefficients::Word(v) => Some(v),
            Coefficients::Big(_) => None,
        }
    }

    /// Consumes into big-integer coefficients, if this is the wide
    /// representation.
    pub fn into_bigs(self) -> Option<Vec<BigUint>> {
        match self {
            Coefficients::Big(v) => Some(v),
            Coefficients::Word(_) => None,
        }
    }
}

impl From<Vec<u128>> for Coefficients {
    fn from(v: Vec<u128>) -> Self {
        Coefficients::Word(v)
    }
}

impl From<Vec<BigUint>> for Coefficients {
    fn from(v: Vec<BigUint>) -> Self {
        Coefficients::Big(v)
    }
}

/// An immutable, shareable polynomial ring `ℤ_Q[x]/(xⁿ ± 1)`: the
/// object-safe interface both [`Ring`](crate::Ring) (one word-sized
/// modulus, one channel) and [`RnsRing`](crate::RnsRing) (`k` coprime
/// word-sized channels, CRT at the boundary) implement.
///
/// Every method takes `&self` and implementors are `Send + Sync`, so an
/// `Arc<dyn PolyRing>` can be driven from any number of threads — the
/// contract [`RingExecutor`](crate::RingExecutor) is built on.
///
/// The channel methods decompose one product into independent
/// word-sized work items:
///
/// 1. [`split`](PolyRing::split) each operand into `channels()` residue
///    vectors (validating length and range once, up front);
/// 2. run [`channel_polymul`](PolyRing::channel_polymul) for every
///    channel — independently, on any thread, in any order;
/// 3. [`join`](PolyRing::join) the per-channel products back into
///    coefficients.
///
/// The provided [`polymul`](PolyRing::polymul) runs the three steps
/// sequentially; schedulers distribute step 2.
pub trait PolyRing: Send + Sync {
    /// The transform size `n` (and required coefficient count).
    fn size(&self) -> usize;

    /// Width of the (product) modulus `Q` in bits.
    fn modulus_bits(&self) -> u64;

    /// Whether negacyclic products are available (every channel field
    /// has a `2n`-th root of unity).
    fn supports_negacyclic(&self) -> bool;

    /// Number of independent residue channels a product decomposes
    /// into: 1 for a single-modulus ring, `k` for an RNS ring.
    fn channels(&self) -> usize;

    /// Decomposes one operand into `channels()` word-sized residue
    /// vectors (channel-major), validating length and coefficient range.
    ///
    /// # Errors
    ///
    /// [`Error::CoefficientKind`] when `coeffs` is not the
    /// representation this ring consumes; [`Error::LengthMismatch`] /
    /// [`Error::CoefficientOutOfRange`] from the underlying validation.
    fn split(&self, coeffs: &Coefficients) -> Result<Vec<Vec<u128>>, Error>;

    /// Runs one channel's product over residues produced by
    /// [`split`](PolyRing::split). Pure with respect to the ring: safe
    /// to call for different channels concurrently.
    ///
    /// # Errors
    ///
    /// [`Error::ChannelOutOfRange`] when `channel >= channels()`, plus
    /// the single-ring polymul errors.
    fn channel_polymul(
        &self,
        channel: usize,
        op: PolyOp,
        a: &[u128],
        b: &[u128],
    ) -> Result<Vec<u128>, Error>;

    /// [`channel_polymul`](PolyRing::channel_polymul) writing into a
    /// caller-owned vector, so a scheduler draining many requests can
    /// reuse one output buffer per worker instead of allocating a fresh
    /// `Vec` per work item. `out` is cleared and overwritten; on error
    /// its contents are unspecified.
    ///
    /// The default delegates to the allocating form — implementors with
    /// a pooled-scratch fast path (both [`Ring`](crate::Ring) and
    /// [`RnsRing`](crate::RnsRing)) override it to write directly.
    ///
    /// # Errors
    ///
    /// Exactly those of [`channel_polymul`](PolyRing::channel_polymul).
    fn channel_polymul_into(
        &self,
        channel: usize,
        op: PolyOp,
        a: &[u128],
        b: &[u128],
        out: &mut Vec<u128>,
    ) -> Result<(), Error> {
        *out = self.channel_polymul(channel, op, a, b)?;
        Ok(())
    }

    /// Recombines per-channel products (channel-major, as produced by
    /// running [`channel_polymul`](PolyRing::channel_polymul) on every
    /// channel) into coefficients in the ring's native representation.
    fn join(&self, channels: Vec<Vec<u128>>) -> Result<Coefficients, Error>;

    /// Number of *output* channels a [`RingOp`] decomposes into — the
    /// fan-out width a scheduler uses. Equal to [`channels`] for
    /// basis-preserving ops; one less for [`RingOp::Rescale`]; larger
    /// for [`RingOp::BasisExtend`].
    ///
    /// The default supports the basis-preserving ops and rejects the
    /// basis-changing ones, matching the default
    /// [`channel_apply`](PolyRing::channel_apply).
    ///
    /// [`channels`]: PolyRing::channels
    ///
    /// # Errors
    ///
    /// [`Error::UnsupportedOp`] when the ring cannot execute `op`.
    fn op_output_channels(&self, op: &RingOp) -> Result<usize, Error> {
        match op {
            RingOp::Polymul(_) | RingOp::Add | RingOp::Sub => Ok(self.channels()),
            _ => Err(Error::UnsupportedOp {
                op: op.name(),
                reason: "this ring only provides the basis-preserving ops",
            }),
        }
    }

    /// Runs one *output* channel of `op` over full channel-major operand
    /// splits (as produced by [`split`](PolyRing::split)). Binary ops
    /// take the second operand in `b`; unary ops pass `None`.
    ///
    /// Work items receive the *whole* split — not just their own channel
    /// — because basis-changing ops need cross-channel inputs: a
    /// [`RingOp::Rescale`] output channel reads the dropped last channel,
    /// and a fresh [`RingOp::BasisExtend`] channel folds Garner digits of
    /// every input channel. Like
    /// [`channel_polymul`](PolyRing::channel_polymul), this is pure with
    /// respect to the ring: safe to call for different channels
    /// concurrently and in any order.
    ///
    /// The default delegates [`RingOp::Polymul`] to `channel_polymul`
    /// and rejects everything else, so trait implementors that predate
    /// the op vocabulary keep working unchanged.
    ///
    /// # Errors
    ///
    /// [`Error::UnsupportedOp`] for ops the ring cannot execute,
    /// [`Error::OperandCountMismatch`] when `b` does not match the op's
    /// arity, [`Error::ChannelOutOfRange`] for a bad channel index, plus
    /// the per-channel kernel errors.
    fn channel_apply(
        &self,
        op: &RingOp,
        channel: usize,
        a: &[Vec<u128>],
        b: Option<&[Vec<u128>]>,
    ) -> Result<Vec<u128>, Error> {
        match op {
            RingOp::Polymul(p) => {
                let b = b.ok_or(Error::OperandCountMismatch {
                    op: op.name(),
                    expected: 2,
                    got: 1,
                })?;
                let ra = a.get(channel).ok_or(Error::ChannelOutOfRange {
                    channel,
                    channels: a.len(),
                })?;
                let rb = b.get(channel).ok_or(Error::ChannelOutOfRange {
                    channel,
                    channels: b.len(),
                })?;
                self.channel_polymul(channel, *p, ra, rb)
            }
            _ => Err(Error::UnsupportedOp {
                op: op.name(),
                reason: "this ring only provides the basis-preserving ops",
            }),
        }
    }

    /// [`channel_apply`](PolyRing::channel_apply) writing into a
    /// caller-owned vector — the form the executor's fan-out path uses,
    /// so steady-state serving reuses one output buffer per worker.
    /// `out` is cleared and overwritten; on error its contents are
    /// unspecified.
    ///
    /// The default routes [`RingOp::Polymul`] through
    /// [`channel_polymul_into`](PolyRing::channel_polymul_into) (with
    /// the same arity/channel validation as `channel_apply`) and falls
    /// back to the allocating `channel_apply` for every other op.
    ///
    /// # Errors
    ///
    /// Exactly those of [`channel_apply`](PolyRing::channel_apply).
    fn channel_apply_into(
        &self,
        op: &RingOp,
        channel: usize,
        a: &[Vec<u128>],
        b: Option<&[Vec<u128>]>,
        out: &mut Vec<u128>,
    ) -> Result<(), Error> {
        match op {
            RingOp::Polymul(p) => {
                let b = b.ok_or(Error::OperandCountMismatch {
                    op: op.name(),
                    expected: 2,
                    got: 1,
                })?;
                let ra = a.get(channel).ok_or(Error::ChannelOutOfRange {
                    channel,
                    channels: a.len(),
                })?;
                let rb = b.get(channel).ok_or(Error::ChannelOutOfRange {
                    channel,
                    channels: b.len(),
                })?;
                self.channel_polymul_into(channel, *p, ra, rb, out)
            }
            _ => {
                *out = self.channel_apply(op, channel, a, b)?;
                Ok(())
            }
        }
    }

    /// Recombines the per-channel results of `op` (channel-major, one
    /// entry per [`op_output_channels`](PolyRing::op_output_channels))
    /// into coefficients — CRT recombination over the op's *output*
    /// basis, which differs from the input basis for the basis-changing
    /// ops.
    ///
    /// The default joins over the input basis, which is correct for
    /// every basis-preserving op.
    fn op_join(&self, op: &RingOp, channels: Vec<Vec<u128>>) -> Result<Coefficients, Error> {
        let _ = op;
        self.join(channels)
    }

    /// [`op_output_channels`](PolyRing::op_output_channels) at an
    /// explicit operand `width` — the resident form an
    /// [`OpGraph`](crate::OpGraph) needs, where a mid-chain node's
    /// operands may sit in a narrower (post-rescale) or wider
    /// (post-extend) basis than the ring's native one.
    ///
    /// The default only accepts the native width and delegates, so
    /// implementors that predate op graphs keep working for single-node
    /// graphs unchanged.
    ///
    /// # Errors
    ///
    /// [`Error::UnsupportedOp`] when the ring cannot execute `op` at
    /// `width` channels.
    fn op_output_channels_at(&self, op: &RingOp, width: usize) -> Result<usize, Error> {
        if width == self.channels() {
            return self.op_output_channels(op);
        }
        Err(Error::UnsupportedOp {
            op: op.name(),
            reason: "this ring only executes ops at its native channel width",
        })
    }

    /// [`channel_apply`](PolyRing::channel_apply) at an explicit operand
    /// `width`: `a` (and `b`, for binary ops) hold `width` channel-major
    /// residue vectors over the basis an op chain has reached — the
    /// ring's native basis truncated by rescales and/or extended by the
    /// ring's deterministic fresh primes. This is how graph execution
    /// keeps residues resident between nodes: intermediate results stay
    /// channel-major and feed the next node's `channel_apply_at`
    /// directly, with no CRT join in between.
    ///
    /// The default only accepts the native width and delegates to
    /// [`channel_apply`](PolyRing::channel_apply).
    ///
    /// # Errors
    ///
    /// Those of [`channel_apply`](PolyRing::channel_apply), plus
    /// [`Error::UnsupportedOp`] when the ring cannot execute `op` at
    /// `width` channels.
    fn channel_apply_at(
        &self,
        op: &RingOp,
        width: usize,
        channel: usize,
        a: &[Vec<u128>],
        b: Option<&[Vec<u128>]>,
    ) -> Result<Vec<u128>, Error> {
        if width == self.channels() {
            return self.channel_apply(op, channel, a, b);
        }
        Err(Error::UnsupportedOp {
            op: op.name(),
            reason: "this ring only executes ops at its native channel width",
        })
    }

    /// [`channel_apply_at`](PolyRing::channel_apply_at) writing into a
    /// caller-owned vector — the executor's graph fan-out form. `out`
    /// is cleared and overwritten; on error its contents are
    /// unspecified.
    ///
    /// # Errors
    ///
    /// Exactly those of [`channel_apply_at`](PolyRing::channel_apply_at).
    fn channel_apply_at_into(
        &self,
        op: &RingOp,
        width: usize,
        channel: usize,
        a: &[Vec<u128>],
        b: Option<&[Vec<u128>]>,
        out: &mut Vec<u128>,
    ) -> Result<(), Error> {
        if width == self.channels() {
            return self.channel_apply_into(op, channel, a, b, out);
        }
        *out = self.channel_apply_at(op, width, channel, a, b)?;
        Ok(())
    }

    /// [`join`](PolyRing::join) over an explicit basis `width`: CRT
    /// recombination of `width` channel-major vectors over the first
    /// `width` moduli of the ring's prefix chain (native primes,
    /// truncated or extended as an op chain rescaled/extended). This is
    /// the *single* join an [`OpGraph`](crate::OpGraph) performs, at its
    /// output node only.
    ///
    /// The default only accepts the native width and delegates.
    ///
    /// # Errors
    ///
    /// Those of [`join`](PolyRing::join), plus [`Error::UnsupportedOp`]
    /// for a non-native width the ring cannot recombine.
    fn join_at(&self, width: usize, channels: Vec<Vec<u128>>) -> Result<Coefficients, Error> {
        if width == self.channels() {
            return self.join(channels);
        }
        Err(Error::UnsupportedOp {
            op: "join",
            reason: "this ring only recombines its native channel width",
        })
    }

    /// Whole-request convenience for any [`RingOp`]: validate arity and
    /// operand lengths, split, run every output channel sequentially on
    /// the calling thread, join. This is the sequential oracle the
    /// executor's fan-out path is checked against.
    ///
    /// # Errors
    ///
    /// [`Error::OperandCountMismatch`] when the operand count does not
    /// match the op's arity, [`Error::OperandLengthMismatch`] for
    /// unequal binary operands, plus the split/apply/join errors.
    fn apply(
        &self,
        op: &RingOp,
        a: &Coefficients,
        b: Option<&Coefficients>,
    ) -> Result<Coefficients, Error> {
        let got = 1 + usize::from(b.is_some());
        if got != op.arity() {
            return Err(Error::OperandCountMismatch {
                op: op.name(),
                expected: op.arity(),
                got,
            });
        }
        if let Some(b) = b {
            if a.len() != b.len() {
                return Err(Error::OperandLengthMismatch {
                    a: a.len(),
                    b: b.len(),
                });
            }
        }
        let sa = self.split(a)?;
        let sb = b.map(|b| self.split(b)).transpose()?;
        let parts = (0..self.op_output_channels(op)?)
            .map(|ch| self.channel_apply(op, ch, &sa, sb.as_deref()))
            .collect::<Result<Vec<_>, _>>()?;
        self.op_join(op, parts)
    }

    /// Evaluates a whole [`OpGraph`] sequentially on the calling thread
    /// with *resident residues*: operands are split once, every node
    /// chains over channel-major residue state via
    /// [`channel_apply_at`](PolyRing::channel_apply_at), and exactly one
    /// CRT join runs — at the output node. This is the sequential
    /// oracle the executor's dependency-aware fan-out is checked
    /// against, and the cheap path for callers without an executor.
    ///
    /// # Errors
    ///
    /// [`Error::OperandCountMismatch`] when `operands` does not match
    /// [`OpGraph::inputs`], [`Error::OperandLengthMismatch`] for
    /// unequal operand lengths, plus the split/apply/join errors (a
    /// ring that cannot execute some node at its chain width reports
    /// [`Error::UnsupportedOp`]).
    fn apply_graph(
        &self,
        graph: &OpGraph,
        operands: &[Coefficients],
    ) -> Result<Coefficients, Error> {
        if operands.len() != graph.inputs() {
            return Err(Error::OperandCountMismatch {
                op: "op-graph",
                expected: graph.inputs(),
                got: operands.len(),
            });
        }
        for pair in operands.windows(2) {
            if pair[0].len() != pair[1].len() {
                return Err(Error::OperandLengthMismatch {
                    a: pair[0].len(),
                    b: pair[1].len(),
                });
            }
        }
        let inputs = operands
            .iter()
            .map(|c| self.split(c))
            .collect::<Result<Vec<_>, _>>()?;
        let plan = graph.plan_widths(self.channels(), |op, w| self.op_output_channels_at(op, w))?;
        let mut results: Vec<Option<Vec<Vec<u128>>>> = (0..graph.len()).map(|_| None).collect();
        let dangling = |node| Error::InvalidGraph {
            node,
            reason: "operand references a value the graph evaluation has not produced",
        };
        for (id, node) in graph.nodes().iter().enumerate() {
            let widths = plan.get(id).copied().ok_or_else(|| dangling(id))?;
            let resolve = |operand: &Operand| -> Result<&[Vec<u128>], Error> {
                match *operand {
                    Operand::Input(i) => {
                        inputs.get(i).map(Vec::as_slice).ok_or_else(|| dangling(id))
                    }
                    Operand::Node(j) => results
                        .get(j)
                        .and_then(|r| r.as_deref())
                        .ok_or_else(|| dangling(id)),
                }
            };
            let a = resolve(node.operands().first().ok_or_else(|| dangling(id))?)?;
            let b = node.operands().get(1).map(resolve).transpose()?;
            let parts = (0..widths.output)
                .map(|ch| self.channel_apply_at(node.op(), widths.input, ch, a, b))
                .collect::<Result<Vec<_>, _>>()?;
            if let Some(slot) = results.get_mut(id) {
                *slot = Some(parts);
            }
        }
        let out_width = plan
            .get(graph.output())
            .map_or(self.channels(), |w| w.output);
        let parts = results
            .get_mut(graph.output())
            .and_then(Option::take)
            .ok_or_else(|| dangling(graph.output()))?;
        if graph.len() == 1 {
            self.op_join(graph.output_op(), parts)
        } else {
            self.join_at(out_width, parts)
        }
    }

    /// Whole-request convenience: split both operands, run every
    /// channel sequentially on the calling thread, join.
    fn polymul(
        &self,
        op: PolyOp,
        a: &Coefficients,
        b: &Coefficients,
    ) -> Result<Coefficients, Error> {
        let a = self.split(a)?;
        let b = self.split(b)?;
        let parts = a
            .iter()
            .zip(&b)
            .enumerate()
            .map(|(i, (ra, rb))| self.channel_polymul(i, op, ra, rb))
            .collect::<Result<Vec<_>, _>>()?;
        self.join(parts)
    }

    /// Cyclic product in `ℤ_Q[x]/(xⁿ − 1)` over the coefficient enum.
    ///
    /// Note: on a concrete [`Ring`](crate::Ring)/[`RnsRing`](crate::RnsRing)
    /// value the inherent slice-based method of the same name shadows
    /// this one; call through `dyn PolyRing`, a generic bound, or
    /// `PolyRing::polymul_cyclic(&ring, ..)`.
    fn polymul_cyclic(&self, a: &Coefficients, b: &Coefficients) -> Result<Coefficients, Error> {
        self.polymul(PolyOp::Cyclic, a, b)
    }

    /// Negacyclic product in `ℤ_Q[x]/(xⁿ + 1)` over the coefficient
    /// enum (shadowing note on [`PolyRing::polymul_cyclic`] applies).
    fn polymul_negacyclic(
        &self,
        a: &Coefficients,
        b: &Coefficients,
    ) -> Result<Coefficients, Error> {
        self.polymul(PolyOp::Negacyclic, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ring, RnsRing};
    use mqx_core::primes;
    use std::sync::Arc;

    const N: usize = 64;

    fn poly(n: usize, q: u128, seed: u64) -> Vec<u128> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                u128::from(state) % q
            })
            .collect()
    }

    #[test]
    fn trait_objects_cover_both_ring_kinds() {
        let rings: Vec<Arc<dyn PolyRing>> = vec![
            Arc::new(Ring::auto(primes::Q124, N).unwrap()),
            Arc::new(RnsRing::auto(2, N).unwrap()),
        ];
        assert_eq!(rings[0].channels(), 1);
        assert_eq!(rings[1].channels(), 2);
        for ring in &rings {
            assert_eq!(ring.size(), N);
            assert!(ring.supports_negacyclic());
            assert!(ring.modulus_bits() > 60);
        }
    }

    #[test]
    fn generic_polymul_matches_inherent_api() {
        let ring = Ring::auto(primes::Q124, N).unwrap();
        let a = poly(N, primes::Q124, 1);
        let b = poly(N, primes::Q124, 2);
        let via_trait = ring
            .polymul(PolyOp::Negacyclic, &a.clone().into(), &b.clone().into())
            .unwrap();
        assert_eq!(
            via_trait,
            Coefficients::Word(ring.polymul_negacyclic(&a, &b).unwrap())
        );
        let cyclic = PolyRing::polymul_cyclic(&ring, &a.clone().into(), &b.clone().into()).unwrap();
        assert_eq!(
            cyclic.into_words().unwrap(),
            ring.polymul_cyclic(&a, &b).unwrap()
        );
    }

    #[test]
    fn split_then_channels_then_join_equals_polymul() {
        let ring = RnsRing::auto(3, N).unwrap();
        let q = ring.product_modulus().clone();
        let a: Vec<BigUint> = (0..N as u64).map(BigUint::from).collect();
        let b: Vec<BigUint> = (0..N as u64).map(|i| BigUint::from(i * i + 1)).collect();
        let (ca, cb) = (Coefficients::Big(a), Coefficients::Big(b));
        let sa = ring.split(&ca).unwrap();
        let sb = ring.split(&cb).unwrap();
        assert_eq!(sa.len(), 3);
        // Channels in arbitrary order: results feed join positionally.
        let mut parts = vec![Vec::new(); 3];
        for ch in [2, 0, 1] {
            parts[ch] = ring
                .channel_polymul(ch, PolyOp::Negacyclic, &sa[ch], &sb[ch])
                .unwrap();
        }
        let joined = ring.join(parts).unwrap();
        assert_eq!(joined, ring.polymul(PolyOp::Negacyclic, &ca, &cb).unwrap());
        assert!(joined.as_bigs().unwrap().iter().all(|c| c < &q));
    }

    #[test]
    fn wrong_coefficient_kind_is_reported() {
        let word = Ring::auto(primes::Q124, N).unwrap();
        let wide = RnsRing::auto(2, N).unwrap();
        let bigs = Coefficients::Big(vec![BigUint::zero(); N]);
        let words = Coefficients::Word(vec![0; N]);
        assert!(matches!(
            word.split(&bigs).unwrap_err(),
            Error::CoefficientKind {
                expected: "word",
                got: "big"
            }
        ));
        assert!(matches!(
            wide.split(&words).unwrap_err(),
            Error::CoefficientKind {
                expected: "big",
                got: "word"
            }
        ));
    }

    #[test]
    fn out_of_range_channel_is_rejected() {
        let ring = Ring::auto(primes::Q124, N).unwrap();
        let a = poly(N, primes::Q124, 3);
        assert!(matches!(
            ring.channel_polymul(1, PolyOp::Cyclic, &a, &a).unwrap_err(),
            Error::ChannelOutOfRange {
                channel: 1,
                channels: 1
            }
        ));
        let rns = RnsRing::auto(2, N).unwrap();
        assert!(matches!(
            rns.channel_polymul(5, PolyOp::Cyclic, &a, &a).unwrap_err(),
            Error::ChannelOutOfRange {
                channel: 5,
                channels: 2
            }
        ));
    }

    #[test]
    fn coefficient_accessors_are_consistent() {
        let w = Coefficients::Word(vec![1, 2, 3]);
        let b = Coefficients::Big(vec![BigUint::from(9_u64)]);
        assert_eq!((w.len(), w.kind()), (3, "word"));
        assert_eq!((b.len(), b.kind()), (1, "big"));
        assert!(!w.is_empty());
        assert!(w.as_words().is_some() && w.as_bigs().is_none());
        assert!(b.as_bigs().is_some() && b.as_words().is_none());
        assert_eq!(w.clone().into_words().unwrap(), vec![1, 2, 3]);
        assert!(b.clone().into_words().is_none());
        assert_eq!(b.into_bigs().unwrap(), vec![BigUint::from(9_u64)]);
    }
}
