//! Startup micro-calibration: rank the consumable backends by
//! *measured* ns/butterfly on the running machine instead of trusting
//! the static detected+compiled rule.
//!
//! The paper's argument rests on measured cost per kernel on the host
//! at hand, and the fastest engine for a kernel shifts with problem
//! size and machine — a binary compiled without `-C target-cpu=native`
//! can see its AVX tiers lose to the fully-inlined portable engine,
//! and two hardware tiers can land within noise of each other. The
//! static rule in [`default_backend`](super::default_backend) papers
//! over that with a compile-time heuristic; this module replaces it
//! with a one-shot measurement:
//!
//! 1. [`run`] times a short burst — one forward NTT plus one `vmul`,
//!    the polymul inner shape — on **every consumable backend** in the
//!    registry, using the same §5.1 measurement loop ([`median_ns`])
//!    the benchmark harness uses for its tier sweeps;
//! 2. consumable non-MQX backends are ranked by measured
//!    [`Measurement::ns_per_butterfly`], cheapest first (MQX backends
//!    are measured for diagnostics but never ranked: functional mode is
//!    a slow bit-exact emulation, PISA mode is non-consumable);
//! 3. the result is memoized process-wide behind
//!    [`calibration`](super::calibration), so the cost is paid once —
//!    a few tens of milliseconds at first use (a fair share of it the
//!    deliberately slow functional-MQX emulation, measured for
//!    diagnostics), nothing afterwards.
//!
//! [`Ring::auto`](crate::Ring::auto) and the
//! [`RnsRingBuilder`](crate::RnsRingBuilder) auto path select from the
//! memoized ranking. Two environment variables override it:
//!
//! * `MQX_BACKEND=<name>` pins the named registry backend for every
//!   auto selection (whitespace-trimmed; unknown names surface as
//!   [`Error::UnknownBackend`] at ring build; non-consumable names —
//!   wrong numbers by design — as [`Error::NonConsumableBackend`]);
//! * `MQX_CALIBRATE=off` (`0` and `false` work too, any casing — see
//!   [`calibration_enabled`]) skips the measurement and restores the
//!   static detected+compiled rule bit for bit.
//!
//! ```
//! use mqx::backend;
//!
//! let cal = backend::calibration();
//! // The winner heads the ranking and is always a real engine.
//! assert!(cal.winner().consumable());
//! assert_eq!(cal.winner().name(), cal.ranking()[0].name());
//! ```

use super::{by_name, names, Backend, Tier};
use crate::error::Error;
use mqx_core::{primes, Modulus};
use mqx_ntt::NttPlan;
use mqx_simd::ResidueSoa;
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Transform size of the calibration burst: large enough that the
/// per-butterfly cost reflects the steady-state kernel, small enough
/// that calibrating every backend (including the slow functional MQX
/// emulation) stays in the low-millisecond range.
const CALIBRATION_N: usize = 256;

/// Iterations of the calibration burst; the kept tail's median is the
/// measurement (same §5.1 protocol as the benchmark harness, scaled
/// down to startup budgets).
const CALIBRATION_TOTAL: usize = 10;

/// Kept tail length of the calibration loop.
const CALIBRATION_KEEP: usize = 5;

/// Backends whose measured ns/butterfly is within this factor of the
/// winner's are "competitive": [`Calibration::channel_backends`]
/// round-robins residue channels across them, so tiers tied within
/// measurement noise share the channel work instead of one tier taking
/// every channel on the strength of a noisy coin flip. The margin is
/// deliberately tight — all tiers execute on the same cores, so with
/// parallel channel fan-out the slowest assigned tier is the critical
/// path of every product; a genuinely slower tier must never be mixed
/// in, only true ties.
const COMPETITIVE_MARGIN: f64 = 1.05;

/// How a [`Calibration`] ranked its backends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rule {
    /// Ranked by the measured ns/butterfly of the startup burst.
    Measured,
    /// The static detected+compiled rule
    /// ([`default_backend`](super::default_backend)) — the
    /// `MQX_CALIBRATE=off` fallback; nothing was measured.
    Static,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rule::Measured => "measured",
            Rule::Static => "static",
        })
    }
}

/// One backend's calibration burst, measured on this machine.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// The backend's registry name.
    pub name: &'static str,
    /// The backend's vector tier.
    pub tier: Tier,
    /// Median ns of one forward NTT at the calibration size.
    pub ntt_ns: f64,
    /// Median ns of one element-wise `vmul` at the calibration size.
    pub vmul_ns: f64,
    /// `(ntt_ns + vmul_ns)` normalized by the transform's butterfly
    /// count `(n/2)·log₂ n` — the ranking score, comparable across
    /// machines and sizes.
    pub ns_per_butterfly: f64,
    /// Whether this backend may be ranked (consumable and not an MQX
    /// tier). Ineligible backends are measured for diagnostics only.
    pub eligible: bool,
}

/// The outcome of one calibration pass: per-backend measurements and
/// the ranking auto selection draws from.
#[derive(Debug)]
pub struct Calibration {
    rule: Rule,
    measurements: Vec<Measurement>,
    /// Consumable non-MQX backends, cheapest measured score first
    /// (registry order under [`Rule::Static`]).
    ranking: Vec<Arc<dyn Backend>>,
}

impl Calibration {
    /// How this calibration ranked its backends.
    pub fn rule(&self) -> Rule {
        self.rule
    }

    /// Every backend measurement, in registry order. Empty under
    /// [`Rule::Static`] (nothing was measured).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// The ranked consumable non-MQX backends, best first. Never empty:
    /// the portable backend is always present and always eligible.
    pub fn ranking(&self) -> &[Arc<dyn Backend>] {
        &self.ranking
    }

    /// The backend auto selection picks: the head of the ranking.
    pub fn winner(&self) -> Arc<dyn Backend> {
        Arc::clone(&self.ranking[0])
    }

    /// The measured ranking score for a backend, when one exists.
    pub fn score_of(&self, name: &str) -> Option<f64> {
        self.measurements
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.ns_per_butterfly)
    }

    /// Assigns a backend to each of `k` residue channels: channels
    /// round-robin over the *competitive set* — ranked backends whose
    /// measured score ties the winner's within measurement noise (a
    /// tight 1.05× margin) — so channels may land on different
    /// (tied) tiers, but a measurably slower tier is never put on the
    /// critical path. With no measurements (the static rule) every
    /// channel gets the winner.
    pub fn channel_backends(&self, k: usize) -> Vec<Arc<dyn Backend>> {
        let competitive = self.competitive_set();
        (0..k)
            .map(|i| Arc::clone(competitive[i % competitive.len()]))
            .collect()
    }

    fn competitive_set(&self) -> Vec<&Arc<dyn Backend>> {
        let winner = &self.ranking[0];
        let threshold = match self.score_of(winner.name()) {
            Some(score) => score * COMPETITIVE_MARGIN,
            None => return vec![winner],
        };
        self.ranking
            .iter()
            .filter(|b| {
                self.score_of(b.name())
                    .is_some_and(|score| score <= threshold)
            })
            .collect()
    }
}

/// The §5.1 measurement loop shared by this module and the benchmark
/// harness's tier runners: run `f` `total` times, keep the final `keep`
/// iterations (letting caches warm up and stabilize), and return the
/// **median** of the kept tail in nanoseconds — the median because on
/// shared infrastructure intermittent throttling injects multi-×
/// spikes that a mean cannot shrug off.
///
/// # Panics
///
/// Panics if `keep == 0` or `keep > total`.
pub fn median_ns(total: usize, keep: usize, mut f: impl FnMut()) -> f64 {
    assert!(keep > 0 && keep <= total, "keep must be in 1..=total");
    let mut kept = Vec::with_capacity(keep);
    for i in 0..total {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_nanos() as f64;
        if i >= total - keep {
            kept.push(dt);
        }
    }
    kept.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = kept.len() / 2;
    if kept.len() % 2 == 1 {
        kept[mid]
    } else {
        (kept[mid - 1] + kept[mid]) / 2.0
    }
}

/// Runs one calibration pass under the given rule. [`Rule::Measured`]
/// times the burst on every consumable backend and ranks by score;
/// [`Rule::Static`] skips measurement and reproduces the static
/// detected+compiled ordering. Callers normally want the memoized
/// [`calibration`](super::calibration) instead; this entry point is for
/// tooling (the `calibrate` bench experiment re-measures explicitly)
/// and tests.
pub fn run(rule: Rule) -> Calibration {
    match rule {
        Rule::Static => static_calibration(),
        Rule::Measured => measured_calibration(),
    }
}

/// The process-wide memoized calibration behind
/// [`calibration`](super::calibration): measured by default, static
/// when `MQX_CALIBRATE` is `off`/`0`.
pub(super) fn process_calibration() -> &'static Calibration {
    static CALIBRATION: OnceLock<Calibration> = OnceLock::new();
    CALIBRATION.get_or_init(|| {
        let rule = if calibration_enabled() {
            Rule::Measured
        } else {
            Rule::Static
        };
        run(rule)
    })
}

/// Resolves one auto selection: an explicit `pin` (the `MQX_BACKEND`
/// value) looks the name up in the registry — unknown names are
/// rejected with [`Error::UnknownBackend`], and non-consumable
/// backends (the PISA projection, whose numbers are deliberately
/// wrong) with [`Error::NonConsumableBackend`], since an ambient env
/// var must never silently poison every auto-built ring's outputs.
/// No pin yields the memoized calibration's winner.
pub fn select(pin: Option<&str>) -> Result<Arc<dyn Backend>, Error> {
    match pin {
        Some(name) => {
            let backend = by_name(name).ok_or_else(|| Error::UnknownBackend {
                name: name.to_string(),
                available: names(),
            })?;
            if !backend.consumable() {
                return Err(Error::NonConsumableBackend {
                    name: name.to_string(),
                });
            }
            Ok(backend)
        }
        None => Ok(process_calibration().winner()),
    }
}

/// Per-channel variant of [`select`] for `k` residue channels: a pin
/// applies to every channel; otherwise channels come from
/// [`Calibration::channel_backends`].
pub(crate) fn select_channels(pin: Option<&str>, k: usize) -> Result<Vec<Arc<dyn Backend>>, Error> {
    match pin {
        Some(name) => {
            let backend = select(Some(name))?;
            Ok(vec![backend; k])
        }
        None => Ok(process_calibration().channel_backends(k)),
    }
}

/// Reads the `MQX_BACKEND` pin from the environment. Surrounding
/// whitespace is trimmed (an exported `MQX_BACKEND=" portable"` must
/// not fail as an unknown backend) and an empty or all-whitespace value
/// counts as unset.
pub(crate) fn env_pin() -> Option<String> {
    match std::env::var("MQX_BACKEND") {
        Ok(name) => {
            let trimmed = name.trim();
            if trimmed.is_empty() {
                None
            } else {
                Some(trimmed.to_string())
            }
        }
        _ => None,
    }
}

/// Whether the `MQX_CALIBRATE` environment variable leaves the startup
/// measurement enabled: any of `off`, `0`, or `false` — matched
/// case-insensitively, surrounding whitespace trimmed — disables it;
/// everything else (including unset) enables it.
///
/// This reads the environment on every call; the memoized
/// [`calibration`](super::calibration) consults it once, at first use.
pub fn calibration_enabled() -> bool {
    match std::env::var("MQX_CALIBRATE") {
        Ok(value) => {
            let value = value.trim();
            !(value.eq_ignore_ascii_case("off")
                || value.eq_ignore_ascii_case("false")
                || value == "0")
        }
        Err(_) => true,
    }
}

/// The static fallback: the detected+compiled winner first, then the
/// remaining consumable non-MQX registry entries in registry order.
fn static_calibration() -> Calibration {
    let winner = super::default_backend();
    let mut ranking = vec![Arc::clone(&winner)];
    for backend in super::registry() {
        if backend.consumable() && backend.tier() != Tier::Mqx && !Arc::ptr_eq(backend, &winner) {
            ranking.push(Arc::clone(backend));
        }
    }
    Calibration {
        rule: Rule::Static,
        measurements: Vec::new(),
        ranking,
    }
}

fn measured_calibration() -> Calibration {
    let m = Modulus::new_prime(primes::Q124).expect("Q124 is prime");
    let plan = NttPlan::new(&m, CALIBRATION_N).expect("Q124 supports the calibration size");
    let xs = burst_residues(m.value(), 0xCA11_B8A7E);
    let ys = burst_residues(m.value(), 0x5E1EC7);
    let butterflies = (CALIBRATION_N / 2) as f64 * f64::from(CALIBRATION_N.trailing_zeros());

    let mut measurements = Vec::new();
    for backend in super::registry() {
        if !backend.consumable() {
            continue; // PISA: representative cost, wrong numbers (§4.2).
        }
        // NTT leg: repeated forwards over the same buffer keep every
        // input reduced (transform outputs are reduced residues).
        let mut x = ResidueSoa::from_u128s(&xs);
        let mut scratch = ResidueSoa::zeros(CALIBRATION_N);
        let ntt_ns = median_ns(CALIBRATION_TOTAL, CALIBRATION_KEEP, || {
            backend.forward_ntt(&plan, &mut x, &mut scratch)
        });
        // vmul leg: the point-wise half of the convolution theorem.
        let sx = ResidueSoa::from_u128s(&xs);
        let sy = ResidueSoa::from_u128s(&ys);
        let mut out = ResidueSoa::zeros(CALIBRATION_N);
        let vmul_ns = median_ns(CALIBRATION_TOTAL, CALIBRATION_KEEP, || {
            backend.vmul(&sx, &sy, &mut out, &m)
        });
        measurements.push(Measurement {
            name: backend.name(),
            tier: backend.tier(),
            ntt_ns,
            vmul_ns,
            ns_per_butterfly: (ntt_ns + vmul_ns) / butterflies,
            eligible: backend.tier() != Tier::Mqx,
        });
    }

    // Stable sort: ties keep registry order (fastest static tier first).
    let mut ranked: Vec<(f64, Arc<dyn Backend>)> = measurements
        .iter()
        .filter(|meas| meas.eligible)
        .map(|meas| {
            let backend = by_name(meas.name).expect("measured backends come from the registry");
            (meas.ns_per_butterfly, backend)
        })
        .collect();
    ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));

    Calibration {
        rule: Rule::Measured,
        measurements,
        ranking: ranked.into_iter().map(|(_, backend)| backend).collect(),
    }
}

fn burst_residues(q: u128, seed: u64) -> Vec<u128> {
    let mut state = seed | 1;
    (0..CALIBRATION_N)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            u128::from(state) % q
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_run_covers_every_consumable_backend() {
        let cal = run(Rule::Measured);
        assert_eq!(cal.rule(), Rule::Measured);
        let measured: Vec<_> = cal.measurements().iter().map(|m| m.name).collect();
        for backend in super::super::available() {
            assert_eq!(
                measured.contains(&backend.name()),
                backend.consumable(),
                "{} measured iff consumable",
                backend.name()
            );
        }
        for m in cal.measurements() {
            assert!(m.ntt_ns > 0.0 && m.vmul_ns > 0.0, "{}", m.name);
            assert!(m.ns_per_butterfly > 0.0, "{}", m.name);
            assert_eq!(m.eligible, m.tier != Tier::Mqx, "{}", m.name);
        }
    }

    #[test]
    fn measured_ranking_is_sorted_and_mqx_free() {
        let cal = run(Rule::Measured);
        assert!(!cal.ranking().is_empty());
        let scores: Vec<f64> = cal
            .ranking()
            .iter()
            .map(|b| cal.score_of(b.name()).expect("ranked ⇒ measured"))
            .collect();
        assert!(scores.windows(2).all(|w| w[0] <= w[1]), "{scores:?}");
        for b in cal.ranking() {
            assert!(b.consumable());
            assert_ne!(b.tier(), Tier::Mqx);
        }
        assert_eq!(cal.winner().name(), cal.ranking()[0].name());
    }

    #[test]
    fn static_run_reproduces_the_static_rule() {
        let cal = run(Rule::Static);
        assert_eq!(cal.rule(), Rule::Static);
        assert!(cal.measurements().is_empty());
        assert!(Arc::ptr_eq(&cal.winner(), &super::super::default_backend()));
        // Every channel falls back to the static winner.
        let channels = cal.channel_backends(4);
        assert_eq!(channels.len(), 4);
        for b in &channels {
            assert!(Arc::ptr_eq(b, &cal.winner()));
        }
    }

    #[test]
    fn channel_backends_stay_within_the_ranking() {
        let cal = run(Rule::Measured);
        let channels = cal.channel_backends(5);
        assert_eq!(channels.len(), 5);
        let winner_score = cal.score_of(cal.winner().name()).unwrap();
        for b in &channels {
            assert!(b.consumable());
            let score = cal.score_of(b.name()).expect("assigned ⇒ measured");
            assert!(
                score <= winner_score * COMPETITIVE_MARGIN,
                "{} at {score} vs winner {winner_score}",
                b.name()
            );
        }
        assert!(Arc::ptr_eq(&channels[0], &cal.winner()));
    }

    #[test]
    fn median_ns_keeps_only_the_tail() {
        let mut calls = 0;
        let ns = median_ns(10, 5, || calls += 1);
        assert_eq!(calls, 10);
        assert!(ns >= 0.0);
    }

    #[test]
    #[should_panic(expected = "keep must be")]
    fn median_ns_rejects_zero_keep() {
        let _ = median_ns(10, 0, || {});
    }
}
