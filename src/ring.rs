//! The [`Ring`] front door: a prime field, an NTT plan, a
//! runtime-selected [`Backend`], and a pooled scratch substrate — the
//! one entry point the tests, examples and benchmarks go through.
//!
//! Every hot-path method takes `&self`: per-call scratch comes from an
//! internal lock-free `ScratchPool`, so one ring is an
//! immutable, shareable handle — wrap it in an [`Arc`] and hammer it
//! from as many threads as you like (see `tests/shared_ring.rs`), or
//! drive it through [`RingExecutor`](crate::RingExecutor) for batched
//! serving.
//!
//! ```
//! use mqx::{core::primes, Ring};
//!
//! // Pick the fastest tier this machine can actually execute.
//! let ring = Ring::auto(primes::Q124, 256)?;
//!
//! // Negacyclic polynomial product (the RLWE workhorse), entirely in
//! // the selected vector tier.
//! let f: Vec<u128> = (0..256_u64).map(|i| u128::from(i % 17)).collect();
//! let g: Vec<u128> = (0..256_u64).map(|i| u128::from(i % 23)).collect();
//! let product = ring.polymul_negacyclic(&f, &g)?;
//! assert_eq!(product.len(), 256);
//! # Ok::<(), mqx::Error>(())
//! ```

use crate::backend::{self, Backend};
use crate::error::Error;
use crate::plan_cache::{self, PlanCache};
use crate::scratch::ScratchPool;
use mqx_core::{Modulus, MulAlgorithm};
use mqx_ntt::NttPlan;
use mqx_simd::ResidueSoa;
use std::fmt;
use std::sync::Arc;

/// Returns `true` unless `MQX_LAZY` is set to `off`, `false` or `0`
/// (case-insensitive, surrounding whitespace ignored — the same grammar
/// as `MQX_CALIBRATE`). When enabled (the default), rings route
/// polynomial products through the lazy-reduction fused NTT pipeline
/// ([`Backend::polymul_cyclic_fused`]); when disabled they use the
/// canonical per-stage-reduced kernels. Both paths are bit-identical —
/// the escape hatch exists for benchmarking the delta and for
/// bisecting, not for correctness.
pub fn lazy_enabled() -> bool {
    match std::env::var("MQX_LAZY") {
        Ok(value) => {
            let value = value.trim();
            !(value.eq_ignore_ascii_case("off")
                || value.eq_ignore_ascii_case("false")
                || value == "0")
        }
        _ => true,
    }
}

/// How a [`RingBuilder`] picks its backend.
enum BackendChoice {
    /// The process's auto selection: the `MQX_BACKEND` pin when set,
    /// otherwise the measured-calibration winner (static rule under
    /// `MQX_CALIBRATE=off`). See [`backend::selected_backend`].
    Auto,
    /// Look the name up in the registry at build time.
    Named(String),
    /// Use this exact instance.
    Instance(Arc<dyn Backend>),
}

/// Configures and builds a [`Ring`].
///
/// ```
/// use mqx::{core::primes, RingBuilder};
///
/// let ring = RingBuilder::new(primes::Q124, 64)
///     .backend_name("portable")
///     .build()?;
/// assert_eq!(ring.backend().name(), "portable");
/// # Ok::<(), mqx::Error>(())
/// ```
pub struct RingBuilder {
    modulus: u128,
    n: usize,
    algorithm: MulAlgorithm,
    choice: BackendChoice,
    cache: Arc<PlanCache>,
    scratch_workers: Option<usize>,
    lazy: Option<bool>,
}

impl RingBuilder {
    /// Starts a builder for an `n`-point ring over the prime `modulus`.
    pub fn new(modulus: u128, n: usize) -> Self {
        RingBuilder {
            modulus,
            n,
            algorithm: MulAlgorithm::Schoolbook,
            choice: BackendChoice::Auto,
            cache: Arc::clone(plan_cache::global()),
            scratch_workers: None,
            lazy: None,
        }
    }

    /// Pins an exact backend instance (e.g. one from
    /// [`backend::available`]).
    pub fn backend(mut self, backend: Arc<dyn Backend>) -> Self {
        self.choice = BackendChoice::Instance(backend);
        self
    }

    /// Pins a backend by registry name; [`RingBuilder::build`] fails
    /// with [`Error::UnknownBackend`] if this host does not offer it.
    pub fn backend_name(mut self, name: &str) -> Self {
        self.choice = BackendChoice::Named(name.to_string());
        self
    }

    /// Selects the double-word multiplication algorithm threaded through
    /// the modulus (the §5.5 schoolbook-vs-Karatsuba sensitivity axis).
    pub fn mul_algorithm(mut self, algorithm: MulAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Serves the NTT plan from `cache` instead of the process-wide
    /// [`plan_cache::global`] — for tenants with isolated capacity or
    /// tests asserting hit counts.
    pub fn plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Sizes the ring's internal scratch pool for `workers` concurrent
    /// polymul callers (three pooled buffers each). Without a hint the
    /// pool is sized from [`std::thread::available_parallelism`], which
    /// under-provisions when an executor runs more workers than the
    /// machine has hardware threads — past the pool's capacity, extra
    /// in-flight calls degrade to steady-state malloc/free churn.
    pub fn scratch_concurrency(mut self, workers: usize) -> Self {
        self.scratch_workers = Some(workers);
        self
    }

    /// Forces the lazy-reduction fused polymul pipeline on (`true`) or
    /// off (`false`) for this ring, overriding the process-wide
    /// [`lazy_enabled`] default (`MQX_LAZY`). The two paths are
    /// bit-identical; this knob exists for A/B measurement.
    pub fn lazy(mut self, lazy: bool) -> Self {
        self.lazy = Some(lazy);
        self
    }

    /// Builds the ring: validates the modulus, constructs the NTT plan,
    /// resolves the backend, and sets up the lock-free scratch pool
    /// (buffers themselves are allocated lazily on first use).
    pub fn build(self) -> Result<Ring, Error> {
        let backend = match self.choice {
            BackendChoice::Auto => backend::selected_backend()?,
            BackendChoice::Instance(b) => b,
            BackendChoice::Named(name) => {
                backend::by_name(&name).ok_or_else(|| Error::UnknownBackend {
                    name,
                    available: backend::names(),
                })?
            }
        };
        let modulus = Modulus::new_prime(self.modulus)?.with_algorithm(self.algorithm);
        let plan = self.cache.plan_for(&modulus, self.n)?;
        let n = plan.size();
        let scratch = match self.scratch_workers {
            Some(workers) => ScratchPool::with_concurrency(n, workers),
            None => ScratchPool::new(n),
        };
        let lazy = self.lazy.unwrap_or_else(lazy_enabled);
        Ok(Ring {
            modulus,
            plan,
            backend,
            scratch,
            lazy,
        })
    }
}

/// A polynomial ring `ℤ_q[x]/(xⁿ ± 1)` bound to one runtime-dispatched
/// engine tier.
///
/// The ring holds a shared handle to its [`NttPlan`] (served by the
/// [`plan_cache`](crate::plan_cache), so per-request ring opens skip
/// the `O(n log n)` table build) plus a lock-free pool of `n`-residue
/// scratch sets, so repeated transforms and polynomial products
/// allocate nothing once the pool has warmed up (beyond the caller's
/// own output, for the slice-based conveniences).
///
/// Every method takes `&self` and the type is `Send + Sync`: an
/// `Arc<Ring>` can be shared across any number of worker threads, each
/// call checking its scratch out of the pool independently. Results are
/// bit-identical regardless of concurrency (each call owns its working
/// set exclusively).
pub struct Ring {
    modulus: Modulus,
    plan: Arc<NttPlan>,
    backend: Arc<dyn Backend>,
    scratch: ScratchPool,
    /// Route polynomial products through the lazy-reduction fused
    /// pipeline ([`Backend::polymul_cyclic_fused`]). Bit-identical to
    /// the canonical path; see [`lazy_enabled`].
    lazy: bool,
}

impl fmt::Debug for Ring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ring")
            .field("modulus", &self.modulus.value())
            .field("n", &self.plan.size())
            .field("backend", &self.backend.name())
            .finish()
    }
}

impl Ring {
    /// Builds an `n`-point ring over the prime `modulus` on the fastest
    /// vector tier **as measured on this machine**: the first auto
    /// build triggers a one-shot micro-calibration that times a short
    /// NTT + `vmul` burst on every consumable backend and ranks tiers
    /// by observed ns/butterfly (memoized process-wide; see
    /// [`backend::calibration`]). Two environment overrides:
    /// `MQX_BACKEND=<name>` pins a registry backend (unknown names
    /// fail with [`Error::UnknownBackend`]), and `MQX_CALIBRATE=off`
    /// skips the measurement and restores the static
    /// detected+compiled rule ([`backend::default_backend`]).
    pub fn auto(modulus: u128, n: usize) -> Result<Ring, Error> {
        RingBuilder::new(modulus, n).build()
    }

    /// Builds a ring pinned to an exact backend instance.
    pub fn with_backend(modulus: u128, n: usize, backend: Arc<dyn Backend>) -> Result<Ring, Error> {
        RingBuilder::new(modulus, n).backend(backend).build()
    }

    /// Builds a ring pinned to a backend by registry name.
    pub fn with_backend_name(modulus: u128, n: usize, name: &str) -> Result<Ring, Error> {
        RingBuilder::new(modulus, n).backend_name(name).build()
    }

    /// Starts a [`RingBuilder`] for finer control.
    pub fn builder(modulus: u128, n: usize) -> RingBuilder {
        RingBuilder::new(modulus, n)
    }

    /// The backend executing this ring's kernels. Safe to call from any
    /// thread: the backend is immutable and shared.
    pub fn backend(&self) -> &dyn Backend {
        self.backend.as_ref()
    }

    /// A shareable handle to the backend.
    pub fn backend_arc(&self) -> Arc<dyn Backend> {
        Arc::clone(&self.backend)
    }

    /// The ring's modulus (with Barrett constants).
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// The underlying NTT plan. Plans are immutable once built, so this
    /// reference is safe to read concurrently with any ring operation.
    pub fn plan(&self) -> &NttPlan {
        &self.plan
    }

    /// A shareable handle to the (cached) NTT plan.
    pub fn plan_arc(&self) -> Arc<NttPlan> {
        Arc::clone(&self.plan)
    }

    /// The transform size `n`.
    pub fn size(&self) -> usize {
        self.plan.size()
    }

    /// Whether negacyclic (`xⁿ + 1`) operations are available.
    pub fn supports_negacyclic(&self) -> bool {
        self.plan.psi_soa().is_some()
    }

    /// Whether this ring routes polynomial products through the
    /// lazy-reduction fused pipeline (the default; see [`lazy_enabled`]
    /// and [`RingBuilder::lazy`]).
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    fn check_len(&self, got: usize) -> Result<(), Error> {
        if got == self.plan.size() {
            Ok(())
        } else {
            Err(Error::LengthMismatch {
                expected: self.plan.size(),
                got,
            })
        }
    }

    // ---- transforms ----------------------------------------------------

    /// Forward NTT in place (natural order in and out). Scratch comes
    /// from the ring's lock-free pool, so concurrent calls on a shared
    /// ring never contend on a buffer; no allocation once the pool has
    /// warmed up.
    pub fn forward(&self, x: &mut ResidueSoa) -> Result<(), Error> {
        self.check_len(x.len())?;
        let mut tmp = self.scratch.checkout();
        self.backend.forward_ntt(&self.plan, x, &mut tmp);
        Ok(())
    }

    /// Inverse NTT in place, including the `n⁻¹` scale. Thread-safe like
    /// [`Ring::forward`].
    pub fn inverse(&self, x: &mut ResidueSoa) -> Result<(), Error> {
        self.check_len(x.len())?;
        let mut tmp = self.scratch.checkout();
        self.backend.inverse_ntt(&self.plan, x, &mut tmp);
        Ok(())
    }

    // ---- element-wise kernels ------------------------------------------

    /// `out[i] = x[i] + y[i] mod q`. Inputs may be any (equal) length.
    pub fn vadd(&self, x: &ResidueSoa, y: &ResidueSoa, out: &mut ResidueSoa) {
        self.backend.vadd(x, y, out, &self.modulus);
    }

    /// `out[i] = x[i] − y[i] mod q`.
    pub fn vsub(&self, x: &ResidueSoa, y: &ResidueSoa, out: &mut ResidueSoa) {
        self.backend.vsub(x, y, out, &self.modulus);
    }

    /// `out[i] = x[i] · y[i] mod q`.
    pub fn vmul(&self, x: &ResidueSoa, y: &ResidueSoa, out: &mut ResidueSoa) {
        self.backend.vmul(x, y, out, &self.modulus);
    }

    /// `y[i] ← a·x[i] + y[i] mod q`.
    pub fn axpy(&self, a: u128, x: &ResidueSoa, y: &mut ResidueSoa) {
        self.backend.axpy(a, x, y, &self.modulus);
    }

    // ---- polynomial products -------------------------------------------

    /// Cyclic product in `ℤ_q[x]/(xⁿ − 1)`, entirely in the selected
    /// tier. Operates on pooled scratch buffers checked out for this
    /// call, so concurrent products on a shared ring never interfere:
    /// the only allocation is the returned vector (plus a one-time
    /// buffer build while the pool warms up).
    pub fn polymul_cyclic(&self, a: &[u128], b: &[u128]) -> Result<Vec<u128>, Error> {
        let mut out = Vec::new();
        self.polymul_cyclic_into(a, b, &mut out)?;
        Ok(out)
    }

    /// [`Ring::polymul_cyclic`] writing into a caller-owned vector: the
    /// steady-state allocation-free slice form (`out` is resized once
    /// and reused across calls; all working buffers come from the pool).
    pub fn polymul_cyclic_into(
        &self,
        a: &[u128],
        b: &[u128],
        out: &mut Vec<u128>,
    ) -> Result<(), Error> {
        self.check_len(a.len())?;
        self.check_len(b.len())?;
        let mut sa = self.scratch.checkout();
        let mut sb = self.scratch.checkout();
        let mut tmp = self.scratch.checkout();
        sa.copy_from_u128s(a);
        sb.copy_from_u128s(b);
        if self.lazy {
            self.backend
                .polymul_cyclic_fused(&self.plan, &mut sa, &mut sb, &mut tmp);
        } else {
            self.backend
                .polymul_cyclic(&self.plan, &mut sa, &mut sb, &mut tmp);
        }
        out.clear();
        out.resize(self.plan.size(), 0);
        sa.write_u128s(out);
        Ok(())
    }

    /// Cyclic product over SoA buffers with the result left in `a` — the
    /// allocation-free form (only transform scratch is pooled).
    pub fn polymul_cyclic_soa(&self, a: &mut ResidueSoa, b: &mut ResidueSoa) -> Result<(), Error> {
        self.check_len(a.len())?;
        self.check_len(b.len())?;
        let mut tmp = self.scratch.checkout();
        if self.lazy {
            self.backend
                .polymul_cyclic_fused(&self.plan, a, b, &mut tmp);
        } else {
            self.backend.polymul_cyclic(&self.plan, a, b, &mut tmp);
        }
        Ok(())
    }

    /// Negacyclic product in `ℤ_q[x]/(xⁿ + 1)` — the RLWE workhorse —
    /// via the ψ-twisted cyclic transform, with the twist itself running
    /// through the backend's vector multiply. Thread-safe like every
    /// ring operation: scratch is per-call, from the pool.
    ///
    /// # Errors
    ///
    /// [`Error::NoNegacyclicSupport`] if the field has no `2n`-th root
    /// of unity (check [`Ring::supports_negacyclic`]).
    pub fn polymul_negacyclic(&self, a: &[u128], b: &[u128]) -> Result<Vec<u128>, Error> {
        let mut out = Vec::new();
        self.polymul_negacyclic_into(a, b, &mut out)?;
        Ok(out)
    }

    /// [`Ring::polymul_negacyclic`] writing into a caller-owned vector:
    /// the steady-state allocation-free slice form.
    ///
    /// # Errors
    ///
    /// [`Error::NoNegacyclicSupport`] if the field has no `2n`-th root
    /// of unity.
    pub fn polymul_negacyclic_into(
        &self,
        a: &[u128],
        b: &[u128],
        out: &mut Vec<u128>,
    ) -> Result<(), Error> {
        self.check_len(a.len())?;
        self.check_len(b.len())?;
        if !self.supports_negacyclic() {
            return Err(Error::NoNegacyclicSupport {
                n: self.plan.size(),
            });
        }

        let mut sa = self.scratch.checkout();
        let mut sb = self.scratch.checkout();
        let mut tmp = self.scratch.checkout();
        sa.copy_from_u128s(a);
        sb.copy_from_u128s(b);

        if self.lazy {
            // Whole-pipeline fused form: twist, transforms, pointwise
            // and merged untwist·n⁻¹ all stay in the lazy domains.
            self.backend
                .polymul_negacyclic_fused(&self.plan, &mut sa, &mut sb, &mut tmp)
                .map_err(|_| Error::NoNegacyclicSupport {
                    n: self.plan.size(),
                })?;
        } else {
            let (psi, psi_inv) = self
                .plan
                .psi_soa()
                .zip(self.plan.psi_inv_soa())
                .expect("supports_negacyclic checked above");

            // Twist: buf ← input ⊙ ψ.
            self.backend.vmul(&sa, psi, &mut tmp, &self.modulus);
            std::mem::swap(&mut *sa, &mut *tmp);
            self.backend.vmul(&sb, psi, &mut tmp, &self.modulus);
            std::mem::swap(&mut *sb, &mut *tmp);

            // Cyclic product of the twisted operands (includes the n⁻¹).
            self.backend
                .polymul_cyclic(&self.plan, &mut sa, &mut sb, &mut tmp);

            // Untwist: result ⊙ ψ^{−i}, landing back in `sa`.
            self.backend.vmul(&sa, psi_inv, &mut tmp, &self.modulus);
            std::mem::swap(&mut *sa, &mut *tmp);
        }

        out.clear();
        out.resize(self.plan.size(), 0);
        sa.write_u128s(out);
        Ok(())
    }
}

/// A [`Ring`] is the one-channel case of the generic polynomial-ring
/// interface: `split` validates and clones the word-sized residues,
/// `join` wraps channel 0's product back up.
impl crate::PolyRing for Ring {
    fn size(&self) -> usize {
        self.plan.size()
    }

    fn modulus_bits(&self) -> u64 {
        u64::from(self.modulus.bits())
    }

    fn supports_negacyclic(&self) -> bool {
        Ring::supports_negacyclic(self)
    }

    fn channels(&self) -> usize {
        1
    }

    fn split(&self, coeffs: &crate::Coefficients) -> Result<Vec<Vec<u128>>, Error> {
        let words = coeffs.as_words().ok_or(Error::CoefficientKind {
            expected: "word",
            got: coeffs.kind(),
        })?;
        self.check_len(words.len())?;
        let q = self.modulus.value();
        if let Some(index) = words.iter().position(|&w| w >= q) {
            return Err(Error::CoefficientOutOfRange { index });
        }
        Ok(vec![words.to_vec()])
    }

    fn channel_polymul(
        &self,
        channel: usize,
        op: crate::PolyOp,
        a: &[u128],
        b: &[u128],
    ) -> Result<Vec<u128>, Error> {
        if channel != 0 {
            return Err(Error::ChannelOutOfRange {
                channel,
                channels: 1,
            });
        }
        match op {
            crate::PolyOp::Cyclic => self.polymul_cyclic(a, b),
            crate::PolyOp::Negacyclic => self.polymul_negacyclic(a, b),
        }
    }

    fn channel_polymul_into(
        &self,
        channel: usize,
        op: crate::PolyOp,
        a: &[u128],
        b: &[u128],
        out: &mut Vec<u128>,
    ) -> Result<(), Error> {
        if channel != 0 {
            return Err(Error::ChannelOutOfRange {
                channel,
                channels: 1,
            });
        }
        match op {
            crate::PolyOp::Cyclic => self.polymul_cyclic_into(a, b, out),
            crate::PolyOp::Negacyclic => self.polymul_negacyclic_into(a, b, out),
        }
    }

    fn join(&self, mut channels: Vec<Vec<u128>>) -> Result<crate::Coefficients, Error> {
        if channels.len() != 1 {
            return Err(Error::ChannelCountMismatch {
                expected: 1,
                got: channels.len(),
            });
        }
        Ok(crate::Coefficients::Word(
            channels.pop().expect("one channel"),
        ))
    }

    fn op_output_channels(&self, op: &crate::RingOp) -> Result<usize, Error> {
        use crate::RingOp;
        match op {
            RingOp::Polymul(_) | RingOp::Add | RingOp::Sub => Ok(1),
            _ => Err(Error::UnsupportedOp {
                op: op.name(),
                reason: "a single-modulus ring has no RNS channel structure to drop or extend",
            }),
        }
    }

    fn channel_apply(
        &self,
        op: &crate::RingOp,
        channel: usize,
        a: &[Vec<u128>],
        b: Option<&[Vec<u128>]>,
    ) -> Result<Vec<u128>, Error> {
        use crate::RingOp;
        if channel != 0 {
            return Err(Error::ChannelOutOfRange {
                channel,
                channels: 1,
            });
        }
        let ra = a.first().ok_or(Error::ChannelCountMismatch {
            expected: 1,
            got: 0,
        })?;
        match op {
            RingOp::Polymul(p) => {
                let b = b.ok_or(Error::OperandCountMismatch {
                    op: op.name(),
                    expected: 2,
                    got: 1,
                })?;
                let rb = b.first().ok_or(Error::ChannelCountMismatch {
                    expected: 1,
                    got: 0,
                })?;
                self.channel_polymul(0, *p, ra, rb)
            }
            RingOp::Add | RingOp::Sub => {
                let b = b.ok_or(Error::OperandCountMismatch {
                    op: op.name(),
                    expected: 2,
                    got: 1,
                })?;
                let rb = b.first().ok_or(Error::ChannelCountMismatch {
                    expected: 1,
                    got: 0,
                })?;
                if ra.len() != rb.len() {
                    return Err(Error::OperandLengthMismatch {
                        a: ra.len(),
                        b: rb.len(),
                    });
                }
                let sa = ResidueSoa::from_u128s(ra);
                let sb = ResidueSoa::from_u128s(rb);
                let mut out = ResidueSoa::zeros(ra.len());
                if matches!(op, RingOp::Add) {
                    self.vadd(&sa, &sb, &mut out);
                } else {
                    self.vsub(&sa, &sb, &mut out);
                }
                Ok(out.to_u128s())
            }
            _ => Err(Error::UnsupportedOp {
                op: op.name(),
                reason: "a single-modulus ring has no RNS channel structure to drop or extend",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqx_core::primes;
    use mqx_ntt::polymul;

    const N: usize = 64;

    fn poly(n: usize, q: u128, seed: u64) -> Vec<u128> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                u128::from(state) % q
            })
            .collect()
    }

    #[test]
    fn auto_ring_builds_and_transforms() {
        let ring = Ring::auto(primes::Q124, N).unwrap();
        assert!(ring.backend().consumable());
        let xs = poly(N, primes::Q124, 0xA11CE);
        let mut soa = ResidueSoa::from_u128s(&xs);
        ring.forward(&mut soa).unwrap();
        ring.inverse(&mut soa).unwrap();
        assert_eq!(soa.to_u128s(), xs, "roundtrip on {}", ring.backend().name());
    }

    #[test]
    fn forced_portable_ring_matches_scalar_plan() {
        let ring = Ring::with_backend_name(primes::Q124, N, "portable").unwrap();
        assert_eq!(ring.backend().name(), "portable");
        let xs = poly(N, primes::Q124, 0xBEE);
        let mut expected = xs.clone();
        ring.plan().forward_scalar(&mut expected);
        let mut soa = ResidueSoa::from_u128s(&xs);
        ring.forward(&mut soa).unwrap();
        assert_eq!(soa.to_u128s(), expected);
    }

    #[test]
    fn unknown_backend_is_a_clean_error() {
        let err = Ring::with_backend_name(primes::Q124, N, "tpu").unwrap_err();
        match err {
            Error::UnknownBackend { name, available } => {
                assert_eq!(name, "tpu");
                assert!(available.contains(&"portable"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn invalid_modulus_and_size_propagate() {
        assert!(matches!(Ring::auto(4, N).unwrap_err(), Error::Modulus(_)));
        assert!(matches!(
            Ring::auto(primes::Q124, 12).unwrap_err(),
            Error::Ntt(_)
        ));
    }

    #[test]
    fn length_mismatch_rejected_before_kernels_panic() {
        let ring = Ring::auto(primes::Q124, N).unwrap();
        let mut short = ResidueSoa::zeros(N - 1);
        assert!(matches!(
            ring.forward(&mut short).unwrap_err(),
            Error::LengthMismatch { expected, got } if expected == N && got == N - 1
        ));
        let a = vec![0_u128; N];
        let b = vec![0_u128; N + 1];
        assert!(ring.polymul_cyclic(&a, &b).is_err());
    }

    #[test]
    fn polymul_matches_schoolbook_on_every_consumable_backend() {
        let a = poly(N, primes::Q124, 1);
        let b = poly(N, primes::Q124, 2);
        let m = Modulus::new_prime(primes::Q124).unwrap();
        let cyclic = polymul::schoolbook_cyclic(&a, &b, &m);
        let negacyclic = polymul::schoolbook_negacyclic(&a, &b, &m);
        for backend in crate::backend::available() {
            if !backend.consumable() {
                continue;
            }
            let name = backend.name();
            let ring = Ring::with_backend(primes::Q124, N, backend).unwrap();
            assert_eq!(ring.polymul_cyclic(&a, &b).unwrap(), cyclic, "{name}");
            assert_eq!(
                ring.polymul_negacyclic(&a, &b).unwrap(),
                negacyclic,
                "{name}"
            );
        }
    }

    #[test]
    fn negacyclic_unsupported_is_reported() {
        // Q14 has 2-adicity 10: n = 1024 cyclic works, negacyclic cannot.
        let ring = Ring::auto(primes::Q14, 1024).unwrap();
        assert!(!ring.supports_negacyclic());
        let a = vec![1_u128; 1024];
        assert!(matches!(
            ring.polymul_negacyclic(&a, &a).unwrap_err(),
            Error::NoNegacyclicSupport { n: 1024 }
        ));
    }

    #[test]
    fn karatsuba_ring_agrees_with_schoolbook_ring() {
        let a = poly(N, primes::Q124, 3);
        let b = poly(N, primes::Q124, 4);
        let school = Ring::builder(primes::Q124, N).build().unwrap();
        let kara = Ring::builder(primes::Q124, N)
            .mul_algorithm(MulAlgorithm::Karatsuba)
            .build()
            .unwrap();
        assert_eq!(
            school.polymul_cyclic(&a, &b).unwrap(),
            kara.polymul_cyclic(&a, &b).unwrap()
        );
    }

    #[test]
    fn elementwise_ops_match_modulus_arithmetic() {
        let ring = Ring::auto(primes::Q124, N).unwrap();
        let m = *ring.modulus();
        let a = poly(17, m.value(), 7); // deliberately not lane-aligned
        let b = poly(17, m.value(), 8);
        let sa = ResidueSoa::from_u128s(&a);
        let sb = ResidueSoa::from_u128s(&b);
        let mut out = ResidueSoa::zeros(17);
        ring.vadd(&sa, &sb, &mut out);
        for i in 0..17 {
            assert_eq!(out.get(i), m.add_mod(a[i], b[i]), "vadd {i}");
        }
        ring.vmul(&sa, &sb, &mut out);
        for i in 0..17 {
            assert_eq!(out.get(i), m.mul_mod(a[i], b[i]), "vmul {i}");
        }
        let mut y = sb.clone();
        ring.axpy(a[0], &sa, &mut y);
        for i in 0..17 {
            assert_eq!(y.get(i), m.add_mod(m.mul_mod(a[0], a[i]), b[i]), "axpy {i}");
        }
    }
}
