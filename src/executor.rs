//! [`RingExecutor`]: a work-stealing thread-pool that serves queues of
//! polynomial products against any shared [`PolyRing`].
//!
//! The source paper's throughput argument is that CPUs close the gap to
//! specialized hardware by keeping vector units saturated across *many
//! independent* NTTs — the regime a server hits when it batches polymul
//! requests. This executor is that serving loop: a fixed pool of worker
//! threads (started once, not per call), one immutable ring handle
//! shared by all of them (one plan, pooled per-worker scratch via the
//! ring's internal `ScratchPool`), and a
//! crossbeam-style two-level queue built on `std` — a shared injector
//! plus one deque per worker, with idle workers stealing from busy
//! ones.
//!
//! Each submitted request is fanned out through the ring's channel
//! decomposition ([`PolyRing::split`]): a single-modulus [`Ring`] is
//! one work item, a `k`-channel [`RnsRing`] becomes `k` independent
//! word-sized items that different workers pick up — `channels × batch`
//! items in flight for a batch, replacing the scoped threads `RnsRing`
//! spawns per one-shot call. The worker that finishes a request's last
//! channel performs the CRT join and wakes the caller's
//! [`RequestHandle`].
//!
//! [`Ring`]: crate::Ring
//! [`RnsRing`]: crate::RnsRing
//!
//! ```
//! use std::sync::Arc;
//! use mqx::{core::primes, Coefficients, PolyOp, PolyRing, PolymulRequest, Ring, RingExecutor};
//!
//! let ring: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q124, 64)?);
//! let pool = RingExecutor::new(4)?;
//!
//! // Queue a small batch and collect results in submission order.
//! let requests: Vec<PolymulRequest> = (0..8_u64)
//!     .map(|i| {
//!         let a: Vec<u128> = (0..64).map(|j| u128::from(i + j)).collect();
//!         PolymulRequest::new(PolyOp::Negacyclic, a.clone().into(), a.into())
//!     })
//!     .collect();
//! let products = pool.serve(&ring, requests)?;
//! assert_eq!(products.len(), 8);
//! # Ok::<(), mqx::Error>(())
//! ```

use crate::error::Error;
use crate::poly::{Coefficients, PolyOp, PolyRing};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One queued polynomial product: the operation and both operands, in
/// the ring's native [`Coefficients`] representation.
#[derive(Clone, Debug)]
pub struct PolymulRequest {
    /// Cyclic or negacyclic.
    pub op: PolyOp,
    /// Left operand.
    pub a: Coefficients,
    /// Right operand.
    pub b: Coefficients,
}

impl PolymulRequest {
    /// Bundles an operation and its operands.
    pub fn new(op: PolyOp, a: Coefficients, b: Coefficients) -> Self {
        PolymulRequest { op, a, b }
    }
}

/// The shared state of one in-flight request: per-channel operands in,
/// per-channel products out, joined by whichever worker finishes last.
struct RequestState {
    ring: Arc<dyn PolyRing>,
    op: PolyOp,
    a: Vec<Vec<u128>>,
    b: Vec<Vec<u128>>,
    /// One slot per channel, filled as channel products land.
    slots: Mutex<Vec<Option<Vec<u128>>>>,
    /// Channels still running; the worker that decrements this to zero
    /// joins and notifies.
    remaining: AtomicUsize,
    /// Set on the first channel error (errors win over the join).
    failed: AtomicBool,
    outcome: Mutex<Option<Result<Coefficients, Error>>>,
    done: Condvar,
}

impl RequestState {
    /// Records one channel's result; the last channel to land performs
    /// the join and wakes the handle.
    fn finish_channel(&self, channel: usize, result: Result<Vec<u128>, Error>) {
        match result {
            Ok(product) => {
                self.slots.lock().expect("request slots poisoned")[channel] = Some(product);
            }
            Err(e) => {
                self.failed.store(true, Ordering::Release);
                let mut outcome = self.outcome.lock().expect("request outcome poisoned");
                if outcome.is_none() {
                    *outcome = Some(Err(e));
                }
            }
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut outcome = self.outcome.lock().expect("request outcome poisoned");
            if !self.failed.load(Ordering::Acquire) {
                // The join runs under the same panic guard as the
                // channel kernels: a panicking `PolyRing::join` must
                // surface as a request error, not a dead worker and a
                // poisoned handle.
                let joined = catch_unwind(AssertUnwindSafe(|| {
                    let parts: Vec<Vec<u128>> = self
                        .slots
                        .lock()
                        .expect("request slots poisoned")
                        .iter_mut()
                        .map(|slot| slot.take().expect("every channel landed"))
                        .collect();
                    self.ring.join(parts)
                }))
                .unwrap_or(Err(Error::JoinPanicked));
                *outcome = Some(joined);
            }
            self.done.notify_all();
        }
    }
}

/// A claim on one submitted request's eventual result.
///
/// Dropping the handle without waiting is fine: the request still runs
/// to completion and its result is discarded.
pub struct RequestHandle {
    state: Arc<RequestState>,
}

impl std::fmt::Debug for RequestHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestHandle")
            .field("channels", &self.state.a.len())
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl RequestHandle {
    /// Blocks until every channel of the request has executed and
    /// returns the joined product (or the first channel error).
    pub fn wait(self) -> Result<Coefficients, Error> {
        let mut outcome = self.state.outcome.lock().expect("request outcome poisoned");
        loop {
            // The outcome is published before the notify, and spurious
            // wakeups re-check, so this cannot hang.
            if self.state.remaining.load(Ordering::Acquire) == 0 {
                if let Some(result) = outcome.take() {
                    return result;
                }
            }
            outcome = self
                .state
                .done
                .wait(outcome)
                .expect("request outcome poisoned");
        }
    }

    /// Whether the request has fully executed (its `wait` would not
    /// block).
    pub fn is_finished(&self) -> bool {
        self.state.remaining.load(Ordering::Acquire) == 0
    }
}

/// One schedulable unit of work.
enum Task {
    /// A freshly injected request: the picking worker fans its channels
    /// out (keeping channel 0 for itself, queueing the rest locally
    /// where idle workers steal them).
    Request(Arc<RequestState>),
    /// One residue channel of a request.
    Channel(Arc<RequestState>, usize),
}

/// Queue state shared between the executor handle and its workers.
struct Shared {
    /// New requests land here (FIFO).
    injector: Mutex<VecDeque<Task>>,
    /// Per-worker deques: the owner pushes/pops the back (LIFO keeps a
    /// request's channels hot in one worker's cache), thieves take the
    /// front (FIFO steals the oldest, largest-granularity work).
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Wakeup channel for idle workers.
    idle: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Pops work: own deque first (back), then the injector, then a
    /// steal sweep over the other workers' deques (front).
    fn find_task(&self, worker: usize) -> Option<Task> {
        if let Some(task) = self.locals[worker]
            .lock()
            .expect("worker deque poisoned")
            .pop_back()
        {
            return Some(task);
        }
        if let Some(task) = self.injector.lock().expect("injector poisoned").pop_front() {
            return Some(task);
        }
        let n = self.locals.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(task) = self.locals[victim]
                .lock()
                .expect("worker deque poisoned")
                .pop_front()
            {
                return Some(task);
            }
        }
        None
    }

    /// Wakes idle workers after queueing work. Taking the idle lock
    /// orders the notify after any concurrent pre-sleep queue re-check,
    /// so wakeups cannot be lost.
    fn notify(&self) {
        let _guard = self.idle.lock().expect("idle lock poisoned");
        self.wake.notify_all();
    }

    /// Runs one channel of one request, converting panics into a
    /// request error rather than a hung handle.
    fn run_channel(&self, state: &Arc<RequestState>, channel: usize) {
        let result = catch_unwind(AssertUnwindSafe(|| {
            state
                .ring
                .channel_polymul(channel, state.op, &state.a[channel], &state.b[channel])
        }))
        .unwrap_or(Err(Error::ChannelPanicked { channel }));
        state.finish_channel(channel, result);
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            match self.find_task(worker) {
                Some(Task::Request(state)) => {
                    let k = state.a.len();
                    if k > 1 {
                        // Fan out: keep channel 0, expose the rest for
                        // stealing.
                        {
                            let mut local =
                                self.locals[worker].lock().expect("worker deque poisoned");
                            for channel in 1..k {
                                local.push_back(Task::Channel(Arc::clone(&state), channel));
                            }
                        }
                        self.notify();
                    }
                    self.run_channel(&state, 0);
                }
                Some(Task::Channel(state, channel)) => self.run_channel(&state, channel),
                None => {
                    let guard = self.idle.lock().expect("idle lock poisoned");
                    // Re-check under the idle lock: a submitter that
                    // queued work before we got here will notify while
                    // we hold (or wait on) this lock. The work check
                    // comes before the shutdown check so a task
                    // injected just before shutdown is drained rather
                    // than abandoned with its handle left waiting.
                    if self.has_queued_work() {
                        continue;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    drop(self.wake.wait(guard).expect("idle lock poisoned"));
                }
            }
        }
    }

    fn has_queued_work(&self) -> bool {
        if !self.injector.lock().expect("injector poisoned").is_empty() {
            return true;
        }
        self.locals
            .iter()
            .any(|q| !q.lock().expect("worker deque poisoned").is_empty())
    }
}

/// A work-stealing pool of worker threads serving polymul requests
/// against shared rings.
///
/// The pool is ring-agnostic: each request names its ring, so one
/// executor can serve several rings (different moduli, different
/// geometries) at once. Workers live until the executor is dropped;
/// dropping waits for in-flight requests to finish executing.
pub struct RingExecutor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl RingExecutor {
    /// Starts a pool of `workers` OS threads.
    ///
    /// # Errors
    ///
    /// [`Error::NoWorkers`] when `workers == 0`.
    pub fn new(workers: usize) -> Result<RingExecutor, Error> {
        if workers == 0 {
            return Err(Error::NoWorkers);
        }
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mqx-ring-worker-{i}"))
                    .spawn(move || shared.worker_loop(i))
                    .expect("spawn executor worker")
            })
            .collect();
        Ok(RingExecutor {
            shared,
            workers: handles,
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Queues one product against `ring` and returns a handle to its
    /// eventual result. Operands are validated (length, coefficient
    /// range, representation) up front, so errors surface here rather
    /// than inside the pool.
    ///
    /// # Errors
    ///
    /// [`Error::NoNegacyclicSupport`] for a negacyclic request on a ring
    /// without one, [`Error::ChannelCountMismatch`] for a `split` whose
    /// decomposition is empty or uneven (a misbehaving [`PolyRing`]
    /// impl), plus the [`PolyRing::split`] validation errors.
    pub fn submit(
        &self,
        ring: &Arc<dyn PolyRing>,
        request: PolymulRequest,
    ) -> Result<RequestHandle, Error> {
        if request.op == PolyOp::Negacyclic && !ring.supports_negacyclic() {
            return Err(Error::NoNegacyclicSupport { n: ring.size() });
        }
        let a = ring.split(&request.a)?;
        let b = ring.split(&request.b)?;
        let channels = a.len();
        // Defend against degenerate PolyRing impls: a zero-channel or
        // uneven split would wrap the remaining-channels counter (or
        // index out of range) and leave the handle waiting forever.
        if channels == 0 || b.len() != channels {
            return Err(Error::ChannelCountMismatch {
                expected: ring.channels().max(1),
                got: channels.min(b.len()),
            });
        }
        let state = Arc::new(RequestState {
            ring: Arc::clone(ring),
            op: request.op,
            a,
            b,
            slots: Mutex::new(vec![None; channels]),
            remaining: AtomicUsize::new(channels),
            failed: AtomicBool::new(false),
            outcome: Mutex::new(None),
            done: Condvar::new(),
        });
        self.shared
            .injector
            .lock()
            .expect("injector poisoned")
            .push_back(Task::Request(Arc::clone(&state)));
        self.shared.notify();
        Ok(RequestHandle { state })
    }

    /// Queues a whole batch and blocks for all results, returned in
    /// submission order. All requests are injected before the first
    /// wait, so the pool sees the full `channels × batch` work list at
    /// once.
    pub fn serve(
        &self,
        ring: &Arc<dyn PolyRing>,
        requests: Vec<PolymulRequest>,
    ) -> Result<Vec<Coefficients>, Error> {
        let handles = requests
            .into_iter()
            .map(|r| self.submit(ring, r))
            .collect::<Result<Vec<_>, _>>()?;
        handles.into_iter().map(RequestHandle::wait).collect()
    }
}

impl Drop for RingExecutor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for RingExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingExecutor")
            .field("workers", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ring, RnsRing};
    use mqx_bignum::BigUint;
    use mqx_core::primes;

    const N: usize = 64;

    fn poly(n: usize, q: u128, seed: u64) -> Vec<u128> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                u128::from(state) % q
            })
            .collect()
    }

    #[test]
    fn zero_workers_is_an_error() {
        assert!(matches!(
            RingExecutor::new(0).unwrap_err(),
            Error::NoWorkers
        ));
    }

    #[test]
    fn single_request_matches_direct_call() {
        let ring = Arc::new(Ring::auto(primes::Q124, N).unwrap());
        let a = poly(N, primes::Q124, 1);
        let b = poly(N, primes::Q124, 2);
        let expected = ring.polymul_negacyclic(&a, &b).unwrap();

        let dyn_ring: Arc<dyn PolyRing> = ring;
        let pool = RingExecutor::new(2).unwrap();
        let handle = pool
            .submit(
                &dyn_ring,
                PolymulRequest::new(PolyOp::Negacyclic, a.into(), b.into()),
            )
            .unwrap();
        assert_eq!(handle.wait().unwrap().into_words().unwrap(), expected);
    }

    #[test]
    fn rns_request_fans_channels_and_joins() {
        let ring = Arc::new(RnsRing::auto(3, N).unwrap());
        let q = ring.product_modulus().clone();
        let a: Vec<BigUint> = (0..N as u64).map(BigUint::from).collect();
        let b: Vec<BigUint> = (0..N as u64)
            .map(|i| &BigUint::from(i * i + 7) % &q)
            .collect();
        let expected = ring.polymul_negacyclic(&a, &b).unwrap();

        let dyn_ring: Arc<dyn PolyRing> = ring;
        let pool = RingExecutor::new(3).unwrap();
        let out = pool
            .serve(
                &dyn_ring,
                vec![PolymulRequest::new(PolyOp::Negacyclic, a.into(), b.into())],
            )
            .unwrap();
        assert_eq!(out[0].as_bigs().unwrap(), expected.as_slice());
    }

    #[test]
    fn submit_validates_before_queueing() {
        let dyn_ring: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q124, N).unwrap());
        let pool = RingExecutor::new(1).unwrap();
        // Wrong length.
        let short = PolymulRequest::new(
            PolyOp::Cyclic,
            vec![0_u128; N - 1].into(),
            vec![0_u128; N].into(),
        );
        assert!(matches!(
            pool.submit(&dyn_ring, short).unwrap_err(),
            Error::LengthMismatch { .. }
        ));
        // Wrong representation.
        let big = PolymulRequest::new(
            PolyOp::Cyclic,
            vec![BigUint::zero(); N].into(),
            vec![BigUint::zero(); N].into(),
        );
        assert!(matches!(
            pool.submit(&dyn_ring, big).unwrap_err(),
            Error::CoefficientKind { .. }
        ));
        // Negacyclic on a ring without a 2n-th root.
        let no_nega: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q14, 1024).unwrap());
        let req = PolymulRequest::new(
            PolyOp::Negacyclic,
            vec![0_u128; 1024].into(),
            vec![0_u128; 1024].into(),
        );
        assert!(matches!(
            pool.submit(&no_nega, req).unwrap_err(),
            Error::NoNegacyclicSupport { n: 1024 }
        ));
    }

    #[test]
    fn handles_resolve_out_of_submission_order() {
        let dyn_ring: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q124, N).unwrap());
        let pool = RingExecutor::new(2).unwrap();
        let mut handles = Vec::new();
        let mut expected = Vec::new();
        for i in 0..16_u64 {
            let a = poly(N, primes::Q124, i * 2 + 1);
            let b = poly(N, primes::Q124, i * 2 + 2);
            expected.push(
                dyn_ring
                    .polymul(PolyOp::Cyclic, &a.clone().into(), &b.clone().into())
                    .unwrap(),
            );
            handles.push(
                pool.submit(
                    &dyn_ring,
                    PolymulRequest::new(PolyOp::Cyclic, a.into(), b.into()),
                )
                .unwrap(),
            );
        }
        // Wait in reverse order: completion order must not matter.
        for (handle, want) in handles.into_iter().rev().zip(expected.into_iter().rev()) {
            assert_eq!(handle.wait().unwrap(), want);
        }
    }

    #[test]
    fn one_executor_serves_multiple_rings() {
        let word: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q124, N).unwrap());
        let wide: Arc<dyn PolyRing> = Arc::new(RnsRing::auto(2, N).unwrap());
        let pool = RingExecutor::new(2).unwrap();

        let wa = poly(N, primes::Q124, 5);
        let word_handle = pool
            .submit(
                &word,
                PolymulRequest::new(PolyOp::Cyclic, wa.clone().into(), wa.clone().into()),
            )
            .unwrap();
        let ba: Vec<BigUint> = (0..N as u64).map(BigUint::from).collect();
        let wide_handle = pool
            .submit(
                &wide,
                PolymulRequest::new(PolyOp::Cyclic, ba.clone().into(), ba.clone().into()),
            )
            .unwrap();
        assert_eq!(
            word_handle.wait().unwrap(),
            word.polymul(PolyOp::Cyclic, &wa.clone().into(), &wa.into())
                .unwrap()
        );
        assert_eq!(
            wide_handle.wait().unwrap(),
            wide.polymul(PolyOp::Cyclic, &ba.clone().into(), &ba.into())
                .unwrap()
        );
    }

    #[test]
    fn panicking_join_surfaces_as_join_error_not_a_dead_worker() {
        /// A ring whose CRT join always panics — stands in for a
        /// misbehaving third-party [`PolyRing`] impl.
        struct BadJoin(Ring);
        impl PolyRing for BadJoin {
            fn size(&self) -> usize {
                self.0.size()
            }
            fn modulus_bits(&self) -> u64 {
                PolyRing::modulus_bits(&self.0)
            }
            fn supports_negacyclic(&self) -> bool {
                self.0.supports_negacyclic()
            }
            fn channels(&self) -> usize {
                1
            }
            fn split(&self, coeffs: &Coefficients) -> Result<Vec<Vec<u128>>, Error> {
                PolyRing::split(&self.0, coeffs)
            }
            fn channel_polymul(
                &self,
                channel: usize,
                op: PolyOp,
                a: &[u128],
                b: &[u128],
            ) -> Result<Vec<u128>, Error> {
                PolyRing::channel_polymul(&self.0, channel, op, a, b)
            }
            fn join(&self, _: Vec<Vec<u128>>) -> Result<Coefficients, Error> {
                panic!("join bomb")
            }
        }

        let bad: Arc<dyn PolyRing> = Arc::new(BadJoin(Ring::auto(primes::Q124, N).unwrap()));
        let pool = RingExecutor::new(1).unwrap();
        let a = poly(N, primes::Q124, 13);
        let handle = pool
            .submit(
                &bad,
                PolymulRequest::new(PolyOp::Cyclic, a.clone().into(), a.clone().into()),
            )
            .unwrap();
        assert!(matches!(handle.wait().unwrap_err(), Error::JoinPanicked));

        // The single worker survived the panic: a well-behaved ring is
        // still served by the same pool.
        let good: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q124, N).unwrap());
        let handle = pool
            .submit(
                &good,
                PolymulRequest::new(PolyOp::Cyclic, a.clone().into(), a.into()),
            )
            .unwrap();
        assert!(handle.wait().is_ok());
    }

    #[test]
    fn degenerate_empty_split_is_rejected_at_submit() {
        /// A ring whose split yields no channels at all — without the
        /// submit guard this would wrap the remaining counter and hang
        /// the handle.
        struct NoChannels;
        impl PolyRing for NoChannels {
            fn size(&self) -> usize {
                4
            }
            fn modulus_bits(&self) -> u64 {
                1
            }
            fn supports_negacyclic(&self) -> bool {
                false
            }
            fn channels(&self) -> usize {
                0
            }
            fn split(&self, _: &Coefficients) -> Result<Vec<Vec<u128>>, Error> {
                Ok(Vec::new())
            }
            fn channel_polymul(
                &self,
                channel: usize,
                _: PolyOp,
                _: &[u128],
                _: &[u128],
            ) -> Result<Vec<u128>, Error> {
                Err(Error::ChannelOutOfRange {
                    channel,
                    channels: 0,
                })
            }
            fn join(&self, _: Vec<Vec<u128>>) -> Result<Coefficients, Error> {
                Ok(Coefficients::Word(Vec::new()))
            }
        }

        let ring: Arc<dyn PolyRing> = Arc::new(NoChannels);
        let pool = RingExecutor::new(1).unwrap();
        let req = PolymulRequest::new(
            PolyOp::Cyclic,
            vec![0_u128; 4].into(),
            vec![0_u128; 4].into(),
        );
        assert!(matches!(
            pool.submit(&ring, req).unwrap_err(),
            Error::ChannelCountMismatch { got: 0, .. }
        ));
    }

    #[test]
    fn dropping_unwaited_handles_does_not_wedge_the_pool() {
        let dyn_ring: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q124, N).unwrap());
        let pool = RingExecutor::new(2).unwrap();
        let a = poly(N, primes::Q124, 9);
        for _ in 0..8 {
            let _ = pool
                .submit(
                    &dyn_ring,
                    PolymulRequest::new(PolyOp::Cyclic, a.clone().into(), a.clone().into()),
                )
                .unwrap();
        }
        // A subsequent waited request still completes.
        let handle = pool
            .submit(
                &dyn_ring,
                PolymulRequest::new(PolyOp::Cyclic, a.clone().into(), a.clone().into()),
            )
            .unwrap();
        assert!(handle.wait().is_ok());
        // Drop tears the pool down without hanging.
        drop(pool);
    }
}
