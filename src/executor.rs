//! [`RingExecutor`]: a work-stealing thread-pool that serves queues of
//! ring operations — the whole [`RingOp`] vocabulary: polymul, add,
//! sub, modulus rescale, RNS basis extension — against any shared
//! [`PolyRing`], with serving-grade QoS — request priorities,
//! deadlines, and cooperative cancellation.
//!
//! The source paper's throughput argument is that CPUs close the gap to
//! specialized hardware by keeping vector units saturated across *many
//! independent* NTTs — the regime a server hits when it batches polymul
//! requests. This executor is that serving loop: a fixed pool of worker
//! threads (started once, not per call), one immutable ring handle
//! shared by all of them (one plan, pooled per-worker scratch via the
//! ring's internal `ScratchPool`), and a
//! crossbeam-style two-level queue built on `std` — a shared injector
//! plus one deque per worker, with idle workers stealing from busy
//! ones.
//!
//! Each submitted request ([`RingRequest`], or a [`PolymulRequest`] for
//! source compatibility) is fanned out through the ring's channel
//! decomposition ([`PolyRing::split`] /
//! [`PolyRing::op_output_channels`]): a single-modulus [`Ring`] is one
//! work item, a `k`-channel [`RnsRing`] becomes one independent
//! word-sized item per *output* channel (`k` for polymul/add/sub,
//! `k − 1` for rescale, `k + extra` for basis extension) that different
//! workers pick up — `channels × batch` items in flight for a batch,
//! replacing the scoped threads `RnsRing` spawns per one-shot call. The
//! worker that finishes a request's last channel performs the op's join
//! ([`PolyRing::op_join`] — CRT recombination only for the ops that
//! need it) and wakes the caller's [`RequestHandle`].
//!
//! # Op-graph requests
//!
//! The unit of work is a *dependency graph*, not a single op: a
//! [`RingRequest::graph`] carries an [`OpGraph`] of [`RingOp`] nodes
//! (a single op compiles to the one-node graph — behavior identical to
//! the paragraph above). Fan-out is per `(node × output channel)` with
//! an atomic indegree countdown per node: a node's channels enter the
//! stealing deques the moment its last graph predecessor completes, so
//! stage `s + 1` of request A overlaps stage `s` of request B on the
//! same pool. Between nodes nothing is recombined — intermediates stay
//! channel-major residues ([`PolyRing::channel_apply_at`]), and the
//! single CRT join runs at the graph's output node
//! ([`PolyRing::join_at`]). QoS is per-graph: one priority class, one
//! deadline, one handle; a shed (deadline or cancel) skips every
//! unstarted node.
//!
//! # Quality of service
//!
//! A real multi-tenant queue is never uniform: interactive requests
//! share the pool with bulk batches, and stale work must be shed. Each
//! request therefore carries [`SubmitOptions`]:
//!
//! * a [`Priority`] class — the shared injector keeps one FIFO per
//!   class and workers drain it strictly `High → Normal → Low`
//!   (submission order within a class);
//! * an optional deadline ([`std::time::Instant`]) — a request whose
//!   deadline has passed by the time a worker dequeues it (or that is
//!   already expired at submit) resolves
//!   [`Error::DeadlineExceeded`] without running any remaining channel;
//! * cooperative cancellation — [`RequestHandle::cancel`] marks the
//!   request, queued channels are skipped at dequeue, and the handle
//!   resolves [`Error::Cancelled`] (a request that already finished
//!   keeps its product: cancel is then a no-op).
//!
//! Handles also offer non-blocking and bounded waits
//! ([`RequestHandle::try_wait`], [`RequestHandle::wait_timeout`],
//! [`RequestHandle::wait_deadline`]) so a front end can poll or give up
//! without abandoning the result.
//!
//! [`Ring`]: crate::Ring
//! [`RnsRing`]: crate::RnsRing
//!
//! ```
//! use std::sync::Arc;
//! use mqx::{core::primes, Coefficients, PolyOp, PolyRing, PolymulRequest, Priority, Ring,
//!           RingExecutor};
//!
//! let ring: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q124, 64)?);
//! let pool = RingExecutor::new(4)?;
//!
//! // Queue a small batch and collect results in submission order.
//! let requests: Vec<PolymulRequest> = (0..8_u64)
//!     .map(|i| {
//!         let a: Vec<u128> = (0..64).map(|j| u128::from(i + j)).collect();
//!         PolymulRequest::new(PolyOp::Negacyclic, a.clone().into(), a.into())
//!     })
//!     .collect();
//! let products = pool.serve(&ring, requests)?;
//! assert_eq!(products.len(), 8);
//!
//! // An interactive request overtakes queued bulk work.
//! let a: Vec<u128> = (0..64_u64).map(u128::from).collect();
//! let urgent = PolymulRequest::new(PolyOp::Cyclic, a.clone().into(), a.into())
//!     .with_priority(Priority::High);
//! let product = pool.submit(&ring, urgent)?.wait()?;
//! assert_eq!(product.len(), 64);
//! # Ok::<(), mqx::Error>(())
//! ```

use crate::error::Error;
use crate::graph::{OpGraph, Operand};
use crate::ops::RingOp;
use crate::poly::{Coefficients, PolyOp, PolyRing};
use std::collections::{BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::task::Waker;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An observer fired exactly once, just before a request's outcome is
/// published — the hook the [`frontdoor`](crate::frontdoor) admission
/// layer uses to count deadline sheds and cancellations even when the
/// caller drops its handle without waiting.
pub(crate) type PublishHook = Box<dyn Fn(&Result<Coefficients, Error>) + Send + Sync>;

/// Scheduling class of a request: the injector drains strictly
/// `High → Normal → Low`, submission order within a class.
///
/// The derived order matches the drain order (`High < Normal < Low`),
/// so sorting requests by priority yields execution order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Interactive traffic: dequeued before everything else.
    High = 0,
    /// The default class.
    #[default]
    Normal = 1,
    /// Bulk/background work: runs only when no higher class is queued.
    Low = 2,
}

/// Number of [`Priority`] classes (one injector FIFO each).
pub(crate) const CLASSES: usize = 3;

impl Priority {
    /// Every class, drain order first.
    pub const ALL: [Priority; CLASSES] = [Priority::High, Priority::Normal, Priority::Low];

    /// The injector FIFO this class maps to.
    pub(crate) fn class(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        })
    }
}

/// Per-request scheduling options: a [`Priority`] class and an optional
/// deadline. Builder-style, so call sites name only what they change:
///
/// ```
/// use mqx::{Priority, SubmitOptions};
/// use std::time::Duration;
///
/// let opts = SubmitOptions::new()
///     .priority(Priority::High)
///     .timeout(Duration::from_millis(50));
/// assert_eq!(opts.priority, Priority::High);
/// assert!(opts.deadline.is_some());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Scheduling class ([`Priority::Normal`] by default).
    pub priority: Priority,
    /// Latest useful completion time: a request still queued past this
    /// instant is shed with [`Error::DeadlineExceeded`] instead of
    /// burning worker time. `None` (the default) never sheds.
    pub deadline: Option<Instant>,
}

impl SubmitOptions {
    /// Default options: [`Priority::Normal`], no deadline.
    pub fn new() -> SubmitOptions {
        SubmitOptions::default()
    }

    /// Sets the scheduling class.
    pub fn priority(mut self, priority: Priority) -> SubmitOptions {
        self.priority = priority;
        self
    }

    /// Sets the absolute deadline.
    pub fn deadline(mut self, deadline: Instant) -> SubmitOptions {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline relative to now.
    pub fn timeout(self, budget: Duration) -> SubmitOptions {
        self.deadline(Instant::now() + budget)
    }
}

/// One queued polynomial product: the operation, both operands in the
/// ring's native [`Coefficients`] representation, and the scheduling
/// [`SubmitOptions`].
#[derive(Clone, Debug)]
pub struct PolymulRequest {
    /// Cyclic or negacyclic.
    pub op: PolyOp,
    /// Left operand.
    pub a: Coefficients,
    /// Right operand.
    pub b: Coefficients,
    /// Scheduling options (normal priority, no deadline, unless set via
    /// the `with_*` builders).
    pub options: SubmitOptions,
}

impl PolymulRequest {
    /// Bundles an operation and its operands with default scheduling
    /// (normal priority, no deadline).
    pub fn new(op: PolyOp, a: Coefficients, b: Coefficients) -> Self {
        PolymulRequest {
            op,
            a,
            b,
            options: SubmitOptions::default(),
        }
    }

    /// Replaces the scheduling options wholesale.
    pub fn with_options(mut self, options: SubmitOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the scheduling class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.options.priority = priority;
        self
    }

    /// Sets the absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.options.deadline = Some(deadline);
        self
    }

    /// Sets the deadline relative to now.
    pub fn with_timeout(self, budget: Duration) -> Self {
        self.with_deadline(Instant::now() + budget)
    }
}

/// One queued unit of ring work: a single [`RingOp`] with its
/// operand(s), or a whole [`OpGraph`] with the graph's external
/// operands — plus the scheduling [`SubmitOptions`]. The general form
/// of [`PolymulRequest`] — which converts [`Into`] this type, so every
/// existing polymul call site keeps working unchanged. A single op is
/// exactly the one-node graph ([`OpGraph::single`]): both forms take
/// the same path through the pool.
///
/// ```
/// use mqx::{OpGraph, PolyOp, Priority, RingOp, RingRequest};
/// use mqx::bignum::BigUint;
///
/// let x: Vec<BigUint> = (0..64_u64).map(BigUint::from).collect();
/// let req = RingRequest::rescale(x.clone().into()).with_priority(Priority::High);
/// assert_eq!(req.op(), &RingOp::Rescale);
/// assert!(req.b().is_none());
/// let ext = RingRequest::basis_extend(x.clone().into(), 1);
/// assert_eq!(ext.op(), &RingOp::BasisExtend { extra_channels: 1 });
///
/// // A composite kernel: one request, one handle, one CRT join.
/// let relin = RingRequest::graph(
///     OpGraph::relinearize(PolyOp::Negacyclic, 1),
///     vec![x.clone().into(), x.into()],
/// );
/// assert_eq!(relin.op(), &RingOp::Rescale); // the graph's output op
/// ```
#[derive(Clone, Debug)]
pub struct RingRequest {
    kind: RequestKind,
    options: SubmitOptions,
}

/// What a [`RingRequest`] carries: one op, or one dependency graph.
#[derive(Clone, Debug)]
enum RequestKind {
    /// A single ring operation (compiles to [`OpGraph::single`]).
    Op {
        op: RingOp,
        a: Coefficients,
        b: Option<Coefficients>,
    },
    /// A dependency graph over `operands` (one per [`OpGraph::inputs`]).
    Graph {
        graph: OpGraph,
        operands: Vec<Coefficients>,
    },
}

impl RingRequest {
    /// Bundles an operation with its operand(s) and default scheduling.
    /// Binary ops take `Some(b)`, unary ops `None` — checked against
    /// the op's arity at submit.
    pub fn new(op: RingOp, a: Coefficients, b: Option<Coefficients>) -> Self {
        RingRequest {
            kind: RequestKind::Op { op, a, b },
            options: SubmitOptions::default(),
        }
    }

    /// Bundles a whole dependency graph with its external operands
    /// (`operands[i]` feeds `Operand::Input(i)`; the count is checked
    /// against [`OpGraph::inputs`] at submit). The graph executes as
    /// *one* request: one priority class, one deadline, one handle, one
    /// CRT join at the output node — intermediates stay resident
    /// channel-major residues.
    pub fn graph(graph: OpGraph, operands: Vec<Coefficients>) -> Self {
        RingRequest {
            kind: RequestKind::Graph { graph, operands },
            options: SubmitOptions::default(),
        }
    }

    /// A polynomial product (cyclic or negacyclic).
    pub fn polymul(op: PolyOp, a: Coefficients, b: Coefficients) -> Self {
        RingRequest::new(RingOp::Polymul(op), a, Some(b))
    }

    /// A coefficient-wise modular addition.
    pub fn add(a: Coefficients, b: Coefficients) -> Self {
        RingRequest::new(RingOp::Add, a, Some(b))
    }

    /// A coefficient-wise modular subtraction (`a − b`).
    pub fn sub(a: Coefficients, b: Coefficients) -> Self {
        RingRequest::new(RingOp::Sub, a, Some(b))
    }

    /// A modulus rescale (drop the last RNS channel, divide-and-round).
    pub fn rescale(a: Coefficients) -> Self {
        RingRequest::new(RingOp::Rescale, a, None)
    }

    /// An RNS basis extension by `extra_channels` fresh coprime primes.
    pub fn basis_extend(a: Coefficients, extra_channels: usize) -> Self {
        RingRequest::new(RingOp::BasisExtend { extra_channels }, a, None)
    }

    /// The requested operation — for a graph request, the *output*
    /// node's op (what the request resolves to at its root).
    pub fn op(&self) -> &RingOp {
        match &self.kind {
            RequestKind::Op { op, .. } => op,
            RequestKind::Graph { graph, .. } => graph.output_op(),
        }
    }

    /// The first operand.
    ///
    /// # Panics
    ///
    /// For a malformed graph request carrying zero operands (a state
    /// submit would reject, since every valid graph names at least one
    /// input).
    pub fn a(&self) -> &Coefficients {
        match &self.kind {
            RequestKind::Op { a, .. } => a,
            RequestKind::Graph { operands, .. } => operands
                .first()
                .expect("a graph request names at least one operand"),
        }
    }

    /// The second operand: `Some` for binary ops, and for graph
    /// requests with at least two external inputs.
    pub fn b(&self) -> Option<&Coefficients> {
        match &self.kind {
            RequestKind::Op { b, .. } => b.as_ref(),
            RequestKind::Graph { operands, .. } => operands.get(1),
        }
    }

    /// The dependency graph, for graph requests.
    pub fn op_graph(&self) -> Option<&OpGraph> {
        match &self.kind {
            RequestKind::Op { .. } => None,
            RequestKind::Graph { graph, .. } => Some(graph),
        }
    }

    /// The scheduling options.
    pub fn options(&self) -> SubmitOptions {
        self.options
    }

    /// Replaces the scheduling options wholesale.
    pub fn with_options(mut self, options: SubmitOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the scheduling class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.options.priority = priority;
        self
    }

    /// Sets the absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.options.deadline = Some(deadline);
        self
    }

    /// Sets the deadline relative to now.
    pub fn with_timeout(self, budget: Duration) -> Self {
        self.with_deadline(Instant::now() + budget)
    }
}

impl From<PolymulRequest> for RingRequest {
    fn from(request: PolymulRequest) -> Self {
        RingRequest {
            kind: RequestKind::Op {
                op: RingOp::Polymul(request.op),
                a: request.a,
                b: Some(request.b),
            },
            options: request.options,
        }
    }
}

/// Execution state of one [`OpGraph`] node inside a request: its
/// fan-out bookkeeping (channel slots, work-item countdown), its
/// scheduling gate (indegree countdown), and its materialized output
/// for downstream nodes.
struct NodeExec {
    /// Channel width of the node's operands — the basis the op chain
    /// has reached at this node's inputs.
    in_width: usize,
    /// Output-channel fan-out width (the number of work items) — for
    /// basis-changing ops this differs from `in_width`.
    tasks: usize,
    /// One slot per output channel, filled as channel results land.
    slots: Mutex<Vec<Option<Vec<u128>>>>,
    /// Work items of this node still running; the worker that
    /// decrements this to zero completes the node.
    remaining: AtomicUsize,
    /// Distinct graph predecessors not yet complete — the scheduling
    /// gate. The node's channels enter the deques when this hits zero
    /// (root nodes start at zero and are fanned out at dequeue).
    pending: AtomicUsize,
    /// Distinct successor node ids whose `pending` this node's
    /// completion decrements.
    successors: Vec<usize>,
    /// The node's channel-major result, materialized at completion for
    /// successors to read. Never set for the output node (its slots
    /// feed the join directly) or on the failure path.
    output: OnceLock<Vec<Vec<u128>>>,
}

/// The shared state of one in-flight request: split external operands
/// in, per-node channel results chained through resident residues, one
/// CRT join at the graph's output node by whichever worker finishes its
/// last work item.
struct RequestState {
    ring: Arc<dyn PolyRing>,
    /// The dependency graph (a single op is its one-node graph).
    graph: OpGraph,
    /// Split external operands, channel-major, one per graph input.
    inputs: Vec<Vec<Vec<u128>>>,
    /// Per-node execution state, indexed like `graph.nodes()`.
    nodes: Vec<NodeExec>,
    /// Nodes with no graph predecessors — fanned out at dequeue.
    roots: Vec<usize>,
    /// Latest useful completion time; checked when a worker dequeues
    /// the request or one of its work items.
    deadline: Option<Instant>,
    /// Set by [`RequestHandle::cancel`]; checked at the same dequeue
    /// points as the deadline.
    cancelled: AtomicBool,
    /// Set on the first work-item error (errors win over the join);
    /// remaining items of the whole graph retire without running their
    /// kernels once this is up.
    failed: AtomicBool,
    /// The first error, published into `outcome` when the output node
    /// completes. Kept separate so `outcome` holds a value *only* once
    /// the request is fully resolved — the "finished" signal. Always
    /// recorded *before* `failed` is raised.
    first_error: Mutex<Option<Error>>,
    /// The request's final result. Written exactly once, by the worker
    /// that completes the output node (after the CRT join, when there is
    /// one), so `Some` here means "`wait` will not block".
    outcome: Mutex<Option<Result<Coefficients, Error>>>,
    done: Condvar,
    /// The async completion path: a [`Waker`] parked by a pending
    /// future's `poll`, fired exactly once when the outcome is
    /// published (output node joined, shed, or cancelled). Re-polls
    /// replace the stored waker. Locked strictly after `outcome`.
    waker: Mutex<Option<Waker>>,
    /// Fired once, just before the outcome becomes observable (stats
    /// accounting for the admission layer). `None` for plain submits.
    on_publish: Option<PublishHook>,
}

impl RequestState {
    /// Why a dequeued task of this request should be skipped instead of
    /// executed, if any reason applies. Cancellation wins over an
    /// expired deadline.
    fn shed_reason(&self) -> Option<Error> {
        // ORDERING: Acquire pairs with the Release store in `cancel`,
        // so a worker that observes the flag also observes everything
        // the cancelling thread did before setting it.
        if self.cancelled.load(Ordering::Acquire) {
            return Some(Error::Cancelled);
        }
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => Some(Error::DeadlineExceeded),
            _ => None,
        }
    }

    /// Publishes the request's final result — the single "finished"
    /// signal, reached exactly once per request. Fires the publish hook
    /// first (so admission stats are current before any waiter can
    /// observe the outcome), then writes the outcome under its lock
    /// (strictly after the join, so a handle observing `Some` never
    /// races the join window), wakes condvar waiters, and finally fires
    /// the parked async waker — outside the locks, since a waker may do
    /// arbitrary (cheap) work like unparking a `block_on` thread.
    fn publish(&self, resolved: Result<Coefficients, Error>) {
        if let Some(hook) = &self.on_publish {
            hook(&resolved);
        }
        let waker = {
            let mut outcome = self.outcome.lock().expect("request outcome poisoned");
            debug_assert!(outcome.is_none(), "a request resolves exactly once");
            *outcome = Some(resolved);
            self.done.notify_all();
            // Same lock order as registration (outcome → waker): any
            // waker parked before this point is drained here; any poll
            // after it observes the published outcome. No lost wakeups.
            self.waker.lock().expect("request waker poisoned").take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// A claim on one submitted request's eventual result.
///
/// Dropping the handle without waiting is fine: the request still runs
/// to completion and its result is discarded. To actively discard
/// queued work, call [`cancel`](RequestHandle::cancel) first.
pub struct RequestHandle {
    state: Arc<RequestState>,
}

impl std::fmt::Debug for RequestHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestHandle")
            .field("nodes", &self.state.nodes.len())
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl RequestHandle {
    /// Blocks until the request is fully resolved and returns the
    /// joined product — or the first channel error,
    /// [`Error::Cancelled`], or [`Error::DeadlineExceeded`] when the
    /// request was shed.
    pub fn wait(self) -> Result<Coefficients, Error> {
        let mut outcome = self.state.outcome.lock().expect("request outcome poisoned");
        loop {
            // The outcome is published before the notify, and spurious
            // wakeups re-check, so this cannot hang.
            if let Some(result) = outcome.take() {
                return result;
            }
            outcome = self
                .state
                .done
                .wait(outcome)
                .expect("request outcome poisoned");
        }
    }

    /// Non-blocking wait: the result when the request has resolved,
    /// the handle itself (to try again later) when it has not.
    pub fn try_wait(self) -> Result<Result<Coefficients, Error>, RequestHandle> {
        let taken = self
            .state
            .outcome
            .lock()
            .expect("request outcome poisoned")
            .take();
        match taken {
            Some(result) => Ok(result),
            None => Err(self),
        }
    }

    /// Bounded wait: blocks at most `timeout`, returning the result or
    /// handing the handle back when time runs out.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<Coefficients, Error>, Self> {
        self.wait_deadline(Instant::now() + timeout)
    }

    /// Bounded wait against an absolute deadline (see
    /// [`wait_timeout`](RequestHandle::wait_timeout)).
    pub fn wait_deadline(self, deadline: Instant) -> Result<Result<Coefficients, Error>, Self> {
        {
            let mut outcome = self.state.outcome.lock().expect("request outcome poisoned");
            loop {
                if let Some(result) = outcome.take() {
                    return Ok(result);
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                outcome = self
                    .state
                    .done
                    .wait_timeout(outcome, deadline - now)
                    .expect("request outcome poisoned")
                    .0;
            }
        }
        Err(self)
    }

    /// Requests cooperative cancellation: channels not yet started are
    /// skipped at dequeue and the request resolves
    /// [`Error::Cancelled`]. Channels already executing run to
    /// completion (kernels are never interrupted mid-flight), and a
    /// request that has already finished keeps its product — cancelling
    /// it is a no-op.
    pub fn cancel(&self) {
        // ORDERING: Release pairs with the Acquire load in
        // `shed_reason` — a worker that sees the flag sees everything
        // sequenced before this call.
        self.state.cancelled.store(true, Ordering::Release);
    }

    /// Whether the request has fully resolved (its `wait` would not
    /// block). Decided from the published outcome — not the channel
    /// counter — so this stays `false` through the CRT-join window
    /// between the last channel landing and the join completing.
    pub fn is_finished(&self) -> bool {
        self.state
            .outcome
            .lock()
            .expect("request outcome poisoned")
            .is_some()
    }

    /// A detached cancellation handle for this request: a cheap clone
    /// of the shared state that outlives the handle (or the future
    /// wrapping it), so a front end can drop the result claim yet still
    /// discard the queued work later.
    pub fn canceller(&self) -> Canceller {
        Canceller {
            state: Arc::clone(&self.state),
        }
    }

    /// The async completion primitive behind
    /// [`frontdoor::AsyncRequestHandle`](crate::frontdoor::AsyncRequestHandle):
    /// takes the outcome if the request has resolved, otherwise parks
    /// `waker` in the request's shared outcome slot (replacing any
    /// previously parked waker) to be fired exactly once at
    /// publication. The waker is registered under the outcome lock —
    /// the same lock, in the same order, publication drains it under —
    /// so a wakeup can never be lost between the check and the park.
    pub(crate) fn poll_take(&self, waker: &Waker) -> Option<Result<Coefficients, Error>> {
        let mut outcome = self.state.outcome.lock().expect("request outcome poisoned");
        if let Some(result) = outcome.take() {
            return Some(result);
        }
        *self.state.waker.lock().expect("request waker poisoned") = Some(waker.clone());
        None
    }
}

/// A detached, clonable cancellation claim on one submitted request —
/// [`RequestHandle::canceller`]. Cancelling through it behaves exactly
/// like [`RequestHandle::cancel`]: cooperative, idempotent, and a no-op
/// once the request has resolved.
#[derive(Clone)]
pub struct Canceller {
    state: Arc<RequestState>,
}

impl Canceller {
    /// Requests cooperative cancellation (see [`RequestHandle::cancel`]).
    pub fn cancel(&self) {
        // ORDERING: Release, exactly as in `RequestHandle::cancel`
        // (pairs with the Acquire load in `shed_reason`).
        self.state.cancelled.store(true, Ordering::Release);
    }
}

impl std::fmt::Debug for Canceller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // ORDERING: Acquire matches the readers of this flag; for a
        // Debug snapshot Relaxed would do, but consistency is cheaper
        // than a second convention.
        f.debug_struct("Canceller")
            .field("cancelled", &self.state.cancelled.load(Ordering::Acquire))
            .finish()
    }
}

/// One schedulable unit of work.
enum Task {
    /// A freshly injected request: the picking worker fans its root
    /// nodes' channels out (keeping the first item for itself, queueing
    /// the rest locally where idle workers steal them).
    Request(Arc<RequestState>),
    /// One output channel of one graph node of a request.
    Channel(Arc<RequestState>, usize, usize),
}

/// Queue state shared between the executor handle and its workers.
struct Shared {
    /// New requests land here: one FIFO per [`Priority`] class, drained
    /// strictly by class (submission order within a class).
    injector: Mutex<[VecDeque<Task>; CLASSES]>,
    /// Per-worker deques: the owner pushes/pops the back (LIFO keeps a
    /// request's channels hot in one worker's cache), thieves take the
    /// front (FIFO steals the oldest, largest-granularity work).
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Wakeup channel for idle workers.
    idle: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Pops work: own deque first (back), then the injector (highest
    /// non-empty class), then a steal sweep over the other workers'
    /// deques (front). In-flight channels in the local deques outrank
    /// even high-priority injected requests: finishing started work
    /// releases its handle soonest and keeps its operands cache-hot.
    fn find_task(&self, worker: usize) -> Option<Task> {
        if let Some(task) = self.locals[worker]
            .lock()
            .expect("worker deque poisoned")
            .pop_back()
        {
            return Some(task);
        }
        {
            let mut classes = self.injector.lock().expect("injector poisoned");
            for class in classes.iter_mut() {
                if let Some(task) = class.pop_front() {
                    return Some(task);
                }
            }
        }
        let n = self.locals.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(task) = self.locals[victim]
                .lock()
                .expect("worker deque poisoned")
                .pop_front()
            {
                return Some(task);
            }
        }
        None
    }

    /// Wakes one idle worker after queueing a single task. Taking the
    /// idle lock orders the notify after any concurrent pre-sleep queue
    /// re-check, so wakeups cannot be lost; waking just one worker
    /// avoids a thundering herd stampeding a wide pool for one item.
    fn notify_one(&self) {
        let _guard = self.idle.lock().expect("idle lock poisoned");
        self.wake.notify_one();
    }

    /// Wakes every idle worker — for fan-out bursts (a multi-channel
    /// request exposing `k − 1` stealable items at once) and shutdown,
    /// where every worker must observe the flag.
    fn notify_all(&self) {
        let _guard = self.idle.lock().expect("idle lock poisoned");
        self.wake.notify_all();
    }

    /// Runs one output channel of one graph node — unless the request
    /// has been cancelled, its deadline has passed, or another work
    /// item already failed, in which case the item retires without
    /// burning kernel time. Kernel panics become a request error rather
    /// than a hung handle.
    fn run_node_channel(
        &self,
        state: &Arc<RequestState>,
        node_id: usize,
        channel: usize,
        worker: usize,
    ) {
        if let Some(reason) = state.shed_reason() {
            self.finish_node_channel(state, node_id, channel, Err(reason), worker);
            return;
        }
        // ORDERING: Acquire pairs with the Release store in
        // `finish_node_channel`'s error branch: observing the flag
        // guarantees `first_error` is already recorded, so this item can
        // retire bare — the graph drains without running another kernel
        // and the output node publishes that first error.
        if state.failed.load(Ordering::Acquire) {
            self.retire_node_channel(state, node_id, worker);
            return;
        }
        let gnode = &state.graph.nodes()[node_id];
        let node = &state.nodes[node_id];
        // `_into` form: the ring writes into this vector (reusing pooled
        // scratch internally), so the only steady-state allocation per
        // work item is the output buffer itself. Operand resolution runs
        // under the same panic guard as the kernel: a violated
        // scheduling invariant (a successor running before its
        // predecessor materialized) surfaces as a request error, never a
        // dead worker.
        let result = catch_unwind(AssertUnwindSafe(|| {
            let resolve = |operand: &Operand| -> &[Vec<u128>] {
                match *operand {
                    Operand::Input(i) => &state.inputs[i],
                    Operand::Node(j) => state.nodes[j]
                        .output
                        .get()
                        .expect("predecessors complete before a node is scheduled"),
                }
            };
            let a = resolve(&gnode.operands()[0]);
            let b = gnode.operands().get(1).map(resolve);
            let mut out = Vec::new();
            state
                .ring
                .channel_apply_at_into(gnode.op(), node.in_width, channel, a, b, &mut out)
                .map(|()| out)
        }))
        .unwrap_or(Err(Error::ChannelPanicked { channel }));
        self.finish_node_channel(state, node_id, channel, result, worker);
    }

    /// Records one work item's result; the item that retires a node's
    /// last channel completes the node (join-and-publish for the output
    /// node, successor countdown otherwise).
    fn finish_node_channel(
        &self,
        state: &Arc<RequestState>,
        node_id: usize,
        channel: usize,
        result: Result<Vec<u128>, Error>,
        worker: usize,
    ) {
        match result {
            Ok(product) => {
                state.nodes[node_id]
                    .slots
                    .lock()
                    .expect("node slots poisoned")[channel] = Some(product);
            }
            Err(e) => {
                // The error is recorded strictly before the flag goes
                // up, so `failed == true` implies `first_error` is set.
                {
                    let mut first = state.first_error.lock().expect("request error poisoned");
                    if first.is_none() {
                        *first = Some(e);
                    }
                }
                // ORDERING: Release pairs with the Acquire loads in
                // `run_node_channel` and `complete_node` — any observer
                // of the flag also observes the error recorded above.
                state.failed.store(true, Ordering::Release);
            }
        }
        self.retire_node_channel(state, node_id, worker);
    }

    /// Counts one work item of `node_id` as done (the bare countdown —
    /// the failure-drain path uses it directly, skipping slots and
    /// kernels); the worker that retires the node's last item completes
    /// the node.
    fn retire_node_channel(&self, state: &Arc<RequestState>, node_id: usize, worker: usize) {
        // ORDERING: AcqRel on the countdown — the Release half makes
        // this item's slot/error writes visible to whichever worker
        // hits zero; the Acquire half makes that worker see every other
        // item's writes.
        if state.nodes[node_id]
            .remaining
            .fetch_sub(1, Ordering::AcqRel)
            == 1
        {
            self.complete_node(state, node_id, worker);
        }
    }

    /// Completes a node whose last work item just retired. For the
    /// output node — which, by the graph's no-dead-nodes invariant,
    /// always completes last — this joins and publishes the request.
    /// For interior nodes it materializes the channel-major result and
    /// counts down each successor's indegree, fanning out any node that
    /// becomes ready.
    fn complete_node(&self, state: &Arc<RequestState>, node_id: usize, worker: usize) {
        let node = &state.nodes[node_id];
        // ORDERING: Acquire pairs with the Release store in
        // `finish_node_channel`'s error branch: seeing the flag
        // guarantees the first error is recorded and takeable below.
        let failed = state.failed.load(Ordering::Acquire);
        if node_id == state.graph.output() {
            let resolved = if failed {
                Err(state
                    .first_error
                    .lock()
                    .expect("request error poisoned")
                    .take()
                    .expect("failed request recorded its error"))
            } else {
                // The join runs under the same panic guard as the
                // channel kernels: a panicking `PolyRing` join must
                // surface as a request error, not a dead worker and a
                // poisoned handle. Single-node graphs join through
                // `op_join` — exactly the pre-graph behavior — while
                // multi-node chains join over the width the chain
                // reached.
                catch_unwind(AssertUnwindSafe(|| {
                    let parts: Vec<Vec<u128>> = node
                        .slots
                        .lock()
                        .expect("node slots poisoned")
                        .iter_mut()
                        .map(|slot| slot.take().expect("every channel landed"))
                        .collect();
                    if state.graph.len() == 1 {
                        state.ring.op_join(state.graph.output_op(), parts)
                    } else {
                        state.ring.join_at(node.tasks, parts)
                    }
                }))
                .unwrap_or(Err(Error::JoinPanicked))
            };
            state.publish(resolved);
            return;
        }
        if !failed {
            let parts: Vec<Vec<u128>> = node
                .slots
                .lock()
                .expect("node slots poisoned")
                .iter_mut()
                .map(|slot| slot.take().expect("every channel landed"))
                .collect();
            // OnceLock orders this set before any successor's get; the
            // first (only) completion wins.
            let _ = node.output.set(parts);
        }
        let mut ready = Vec::new();
        for &successor in &node.successors {
            // ORDERING: AcqRel on the indegree countdown — the Release
            // half publishes this node's materialized output to the
            // worker that schedules the successor; the Acquire half
            // makes that worker observe every *other* predecessor's
            // output as well.
            if state.nodes[successor]
                .pending
                .fetch_sub(1, Ordering::AcqRel)
                == 1
            {
                ready.push(successor);
            }
        }
        if ready.is_empty() {
            return;
        }
        let mut pushed = 0;
        {
            let mut local = self.locals[worker].lock().expect("worker deque poisoned");
            for successor in ready {
                for channel in 0..state.nodes[successor].tasks {
                    local.push_back(Task::Channel(Arc::clone(state), successor, channel));
                    pushed += 1;
                }
            }
        }
        if pushed > 1 {
            // This worker pops one next iteration; invite thieves for
            // the rest.
            self.notify_all();
        }
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            match self.find_task(worker) {
                Some(Task::Request(state)) => {
                    // Dequeue-time QoS check: an expired or cancelled
                    // request resolves here, before any fan-out, so no
                    // work item of any node ever reaches a kernel.
                    if let Some(reason) = state.shed_reason() {
                        state.publish(Err(reason));
                        continue;
                    }
                    // Fan out every root node's channels: keep the
                    // first item, expose the rest for stealing.
                    let mut items = state.roots.iter().flat_map(|&node| {
                        (0..state.nodes[node].tasks).map(move |channel| (node, channel))
                    });
                    let first = items.next();
                    let rest: Vec<(usize, usize)> = items.collect();
                    if !rest.is_empty() {
                        {
                            let mut local =
                                self.locals[worker].lock().expect("worker deque poisoned");
                            for (node, channel) in rest {
                                local.push_back(Task::Channel(Arc::clone(&state), node, channel));
                            }
                        }
                        self.notify_all();
                    }
                    if let Some((node, channel)) = first {
                        self.run_node_channel(&state, node, channel, worker);
                    }
                }
                Some(Task::Channel(state, node, channel)) => {
                    self.run_node_channel(&state, node, channel, worker)
                }
                None => {
                    let guard = self.idle.lock().expect("idle lock poisoned");
                    // Re-check under the idle lock: a submitter that
                    // queued work before we got here will notify while
                    // we hold (or wait on) this lock. The work check
                    // comes before the shutdown check so a task
                    // injected just before shutdown is drained rather
                    // than abandoned with its handle left waiting.
                    if self.has_queued_work() {
                        continue;
                    }
                    // ORDERING: Acquire pairs with the Release store in
                    // `Drop`, so an exiting worker observes every write
                    // the shutting-down thread made first.
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    drop(self.wake.wait(guard).expect("idle lock poisoned"));
                }
            }
        }
    }

    fn has_queued_work(&self) -> bool {
        if self
            .injector
            .lock()
            .expect("injector poisoned")
            .iter()
            .any(|class| !class.is_empty())
        {
            return true;
        }
        self.locals
            .iter()
            .any(|q| !q.lock().expect("worker deque poisoned").is_empty())
    }
}

/// A work-stealing pool of worker threads serving polymul requests
/// against shared rings.
///
/// The pool is ring-agnostic: each request names its ring, so one
/// executor can serve several rings (different moduli, different
/// geometries) at once. Workers live until the executor is dropped;
/// dropping waits for in-flight requests to finish executing.
pub struct RingExecutor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl RingExecutor {
    /// Starts a pool of `workers` OS threads.
    ///
    /// # Errors
    ///
    /// [`Error::NoWorkers`] when `workers == 0`.
    pub fn new(workers: usize) -> Result<RingExecutor, Error> {
        if workers == 0 {
            return Err(Error::NoWorkers);
        }
        let shared = Arc::new(Shared {
            injector: Mutex::new(std::array::from_fn(|_| VecDeque::new())),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mqx-ring-worker-{i}"))
                    .spawn(move || shared.worker_loop(i))
                    .expect("spawn executor worker")
            })
            .collect();
        Ok(RingExecutor {
            shared,
            workers: handles,
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// A cheap snapshot of the pending queue length of every
    /// [`Priority`] class (drain order: `[High, Normal, Low]`) — the
    /// requests injected but not yet picked up by a worker. Channels of
    /// requests already being fanned out or executed are not counted,
    /// and a multi-node [`OpGraph`] request occupies exactly **one**
    /// entry however many node × channel work items it will fan out to:
    /// this is the *admission* depth, the number a bounded front door
    /// compares against its per-class limits, and the number to watch
    /// when debugging saturation (a class pinned at its limit is
    /// shedding or starving).
    ///
    /// Accounting is implicit — the injector FIFOs themselves are
    /// measured under their lock, so the snapshot is exact at the
    /// instant it is taken and cannot drift from reality the way a
    /// shadow counter could.
    pub fn queue_depths(&self) -> [usize; CLASSES] {
        let classes = self.shared.injector.lock().expect("injector poisoned");
        std::array::from_fn(|class| classes[class].len())
    }

    /// The pending queue length of one [`Priority`] class (see
    /// [`queue_depths`](RingExecutor::queue_depths)).
    pub fn queue_depth(&self, priority: Priority) -> usize {
        self.shared.injector.lock().expect("injector poisoned")[priority.class()].len()
    }

    /// Queues one ring operation against `ring` and returns a handle to
    /// its eventual result. Accepts anything [`Into`] a [`RingRequest`]
    /// — a [`PolymulRequest`] included. Operands are validated (arity,
    /// length, coefficient range, representation) up front, so errors
    /// surface here rather than inside the pool. The request's
    /// [`SubmitOptions`] govern its injector class and deadline; a
    /// deadline already expired at submit resolves the handle to
    /// [`Error::DeadlineExceeded`] immediately, without queueing (and
    /// without running) anything.
    ///
    /// # Errors
    ///
    /// [`Error::NoNegacyclicSupport`] for a negacyclic request on a ring
    /// without one, [`Error::UnsupportedOp`] for an op the ring cannot
    /// execute, [`Error::OperandCountMismatch`] when the operand count
    /// does not match the op's arity, [`Error::OperandLengthMismatch`]
    /// for unequal binary operands, [`Error::ChannelCountMismatch`] for
    /// a `split` whose decomposition is empty or uneven (a misbehaving
    /// [`PolyRing`] impl), plus the [`PolyRing::split`] validation
    /// errors.
    pub fn submit(
        &self,
        ring: &Arc<dyn PolyRing>,
        request: impl Into<RingRequest>,
    ) -> Result<RequestHandle, Error> {
        self.submit_with_hook(ring, request.into(), None)
    }

    /// [`submit`](RingExecutor::submit) with an optional publish
    /// observer: `hook` fires exactly once, just before the request's
    /// outcome becomes observable — even when the request is shed or
    /// its handle/future is dropped without waiting. This is how the
    /// [`frontdoor`](crate::frontdoor) keeps deadline-shed and
    /// cancellation counts exact without requiring callers to consume
    /// every handle.
    pub(crate) fn submit_with_hook(
        &self,
        ring: &Arc<dyn PolyRing>,
        request: RingRequest,
        on_publish: Option<PublishHook>,
    ) -> Result<RequestHandle, Error> {
        let options = request.options;
        // Compile both request forms to the graph shape: a single op is
        // its one-node graph over its own operands, so everything past
        // this match is one path.
        let (graph, operands) = match request.kind {
            RequestKind::Op { op, a, b } => {
                if op == RingOp::Polymul(PolyOp::Negacyclic) && !ring.supports_negacyclic() {
                    return Err(Error::NoNegacyclicSupport { n: ring.size() });
                }
                // Arity before anything touches the operands: binary ops
                // need exactly two, unary ops exactly one.
                let got = 1 + usize::from(b.is_some());
                if got != op.arity() {
                    return Err(Error::OperandCountMismatch {
                        op: op.name(),
                        expected: op.arity(),
                        got,
                    });
                }
                let mut operands = vec![a];
                operands.extend(b);
                (OpGraph::single(op), operands)
            }
            RequestKind::Graph { graph, operands } => {
                if operands.len() != graph.inputs() {
                    return Err(Error::OperandCountMismatch {
                        op: "op-graph",
                        expected: graph.inputs(),
                        got: operands.len(),
                    });
                }
                if !ring.supports_negacyclic()
                    && graph
                        .nodes()
                        .iter()
                        .any(|n| n.op() == &RingOp::Polymul(PolyOp::Negacyclic))
                {
                    return Err(Error::NoNegacyclicSupport { n: ring.size() });
                }
                (graph, operands)
            }
        };
        // Mismatched operand lengths are a submit-time error with a
        // dedicated variant — never a panic inside a worker.
        for pair in operands.windows(2) {
            if pair[0].len() != pair[1].len() {
                return Err(Error::OperandLengthMismatch {
                    a: pair[0].len(),
                    b: pair[1].len(),
                });
            }
        }
        let inputs = operands
            .iter()
            .map(|c| ring.split(c))
            .collect::<Result<Vec<_>, _>>()?;
        // Defend against degenerate PolyRing impls: a zero-channel or
        // uneven split would wrap a remaining-items counter (or index
        // out of range) and leave the handle waiting forever.
        let channels = inputs.first().map_or(0, Vec::len);
        if channels == 0 || inputs.iter().any(|i| i.len() != channels) {
            return Err(Error::ChannelCountMismatch {
                expected: ring.channels().max(1),
                got: inputs.iter().map(Vec::len).min().unwrap_or(0),
            });
        }
        // Resolve every node's channel widths against this ring — the
        // fan-out plan. This also rejects ops the ring cannot execute
        // (at the width the chain reaches them) before anything is
        // queued.
        let plan = graph.plan_widths(ring.channels(), |op, w| ring.op_output_channels_at(op, w))?;
        if plan.iter().any(|w| w.output == 0) {
            return Err(Error::ChannelCountMismatch {
                expected: ring.channels().max(1),
                got: 0,
            });
        }
        // Scheduling topology: indegrees count *distinct* predecessor
        // nodes (a node consuming the same predecessor twice still waits
        // for one completion), successors mirror them.
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); graph.len()];
        let mut roots = Vec::new();
        let mut indegree = vec![0_usize; graph.len()];
        for (id, node) in graph.nodes().iter().enumerate() {
            let preds: BTreeSet<usize> = node
                .operands()
                .iter()
                .filter_map(|operand| match *operand {
                    Operand::Node(j) => Some(j),
                    Operand::Input(_) => None,
                })
                .collect();
            indegree[id] = preds.len();
            if preds.is_empty() {
                roots.push(id);
            }
            for j in preds {
                successors[j].push(id);
            }
        }
        let nodes = plan
            .iter()
            .zip(successors)
            .zip(&indegree)
            .map(|((widths, successors), &pending)| NodeExec {
                in_width: widths.input,
                tasks: widths.output,
                slots: Mutex::new(vec![None; widths.output]),
                remaining: AtomicUsize::new(widths.output),
                // ORDERING: plain constructor stores — the Arc
                // publication below (injector mutex) orders them before
                // any worker's first load.
                pending: AtomicUsize::new(pending),
                successors,
                output: OnceLock::new(),
            })
            .collect();
        let state = Arc::new(RequestState {
            ring: Arc::clone(ring),
            graph,
            inputs,
            nodes,
            roots,
            deadline: options.deadline,
            cancelled: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            first_error: Mutex::new(None),
            outcome: Mutex::new(None),
            done: Condvar::new(),
            waker: Mutex::new(None),
            on_publish,
        });
        if let Some(deadline) = options.deadline {
            if Instant::now() >= deadline {
                // Dead on arrival: resolve without touching the queues,
                // so zero work items execute even on a saturated pool.
                // `publish` (not a bare outcome write) so the publish
                // hook still observes the shed.
                state.publish(Err(Error::DeadlineExceeded));
                return Ok(RequestHandle { state });
            }
        }
        self.shared.injector.lock().expect("injector poisoned")[options.priority.class()]
            .push_back(Task::Request(Arc::clone(&state)));
        // One queued item, one woken worker.
        self.shared.notify_one();
        Ok(RequestHandle { state })
    }

    /// Queues a whole batch and blocks for all results, returned in
    /// submission order. All requests are injected before the first
    /// wait, so the pool sees the full `channels × batch` work list at
    /// once.
    ///
    /// # Errors
    ///
    /// The first error — at submit (validation) or at wait (a channel
    /// failure, or a request shed by its deadline or cancelled from
    /// another thread). Since the whole batch fails as one, the other
    /// requests of the batch are cancelled (via the cooperative
    /// cancellation path) and drained before this returns, so a failed
    /// batch leaves the pool idle instead of leaking orphaned work
    /// whose results nobody collects.
    pub fn serve(
        &self,
        ring: &Arc<dyn PolyRing>,
        requests: Vec<impl Into<RingRequest>>,
    ) -> Result<Vec<Coefficients>, Error> {
        let mut handles = Vec::with_capacity(requests.len());
        for request in requests {
            match self.submit(ring, request) {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    cancel_and_drain(handles);
                    return Err(e);
                }
            }
        }
        let mut products = Vec::with_capacity(handles.len());
        let mut pending = handles.into_iter();
        for handle in pending.by_ref() {
            match handle.wait() {
                Ok(product) => products.push(product),
                Err(e) => {
                    // The rest of the batch is now pointless: nobody
                    // will see its results, so shed it rather than let
                    // it keep burning worker time behind our back.
                    cancel_and_drain(pending.collect());
                    return Err(e);
                }
            }
        }
        Ok(products)
    }
}

/// Cancels every handle, then waits each out: when this returns, every
/// task those requests had queued has been resolved (shed or finished)
/// and none of the batch is left running in the pool.
fn cancel_and_drain(handles: Vec<RequestHandle>) {
    for handle in &handles {
        handle.cancel();
    }
    for handle in handles {
        let _ = handle.wait();
    }
}

impl Drop for RingExecutor {
    fn drop(&mut self) {
        // ORDERING: Release pairs with the workers' Acquire load in the
        // idle loop — an exiting worker sees all pre-shutdown writes.
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for RingExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingExecutor")
            .field("workers", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ring, RnsRing};
    use mqx_bignum::BigUint;
    use mqx_core::primes;

    const N: usize = 64;

    fn poly(n: usize, q: u128, seed: u64) -> Vec<u128> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                u128::from(state) % q
            })
            .collect()
    }

    #[test]
    fn zero_workers_is_an_error() {
        assert!(matches!(
            RingExecutor::new(0).unwrap_err(),
            Error::NoWorkers
        ));
    }

    #[test]
    fn priority_classes_order_and_default() {
        assert_eq!(Priority::default(), Priority::Normal);
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
        assert_eq!(Priority::ALL.map(|p| p.class()), [0, 1, 2]);
        assert_eq!(Priority::High.to_string(), "high");
    }

    #[test]
    fn submit_options_builders_compose() {
        let opts = SubmitOptions::new();
        assert_eq!(opts.priority, Priority::Normal);
        assert!(opts.deadline.is_none());

        let at = Instant::now() + Duration::from_secs(3600);
        let opts = SubmitOptions::new().priority(Priority::Low).deadline(at);
        assert_eq!(opts.priority, Priority::Low);
        assert_eq!(opts.deadline, Some(at));

        let req = PolymulRequest::new(
            PolyOp::Cyclic,
            vec![0_u128; 4].into(),
            vec![0_u128; 4].into(),
        );
        assert_eq!(req.options, SubmitOptions::default());
        let req = req.with_priority(Priority::High).with_deadline(at);
        assert_eq!(req.options.priority, Priority::High);
        assert_eq!(req.options.deadline, Some(at));
        let req = req.with_options(SubmitOptions::new());
        assert_eq!(req.options, SubmitOptions::default());

        // The relative forms land in the future.
        let before = Instant::now();
        let timed = SubmitOptions::new().timeout(Duration::from_secs(60));
        assert!(timed.deadline.unwrap() > before);
    }

    #[test]
    fn single_request_matches_direct_call() {
        let ring = Arc::new(Ring::auto(primes::Q124, N).unwrap());
        let a = poly(N, primes::Q124, 1);
        let b = poly(N, primes::Q124, 2);
        let expected = ring.polymul_negacyclic(&a, &b).unwrap();

        let dyn_ring: Arc<dyn PolyRing> = ring;
        let pool = RingExecutor::new(2).unwrap();
        let handle = pool
            .submit(
                &dyn_ring,
                PolymulRequest::new(PolyOp::Negacyclic, a.into(), b.into()),
            )
            .unwrap();
        assert_eq!(handle.wait().unwrap().into_words().unwrap(), expected);
    }

    #[test]
    fn rns_request_fans_channels_and_joins() {
        let ring = Arc::new(RnsRing::auto(3, N).unwrap());
        let q = ring.product_modulus().clone();
        let a: Vec<BigUint> = (0..N as u64).map(BigUint::from).collect();
        let b: Vec<BigUint> = (0..N as u64)
            .map(|i| &BigUint::from(i * i + 7) % &q)
            .collect();
        let expected = ring.polymul_negacyclic(&a, &b).unwrap();

        let dyn_ring: Arc<dyn PolyRing> = ring;
        let pool = RingExecutor::new(3).unwrap();
        let out = pool
            .serve(
                &dyn_ring,
                vec![PolymulRequest::new(PolyOp::Negacyclic, a.into(), b.into())],
            )
            .unwrap();
        assert_eq!(out[0].as_bigs().unwrap(), expected.as_slice());
    }

    #[test]
    fn submit_validates_before_queueing() {
        let dyn_ring: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q124, N).unwrap());
        let pool = RingExecutor::new(1).unwrap();
        // Wrong length (both operands agree, but not with the ring).
        let short = PolymulRequest::new(
            PolyOp::Cyclic,
            vec![0_u128; N - 1].into(),
            vec![0_u128; N - 1].into(),
        );
        assert!(matches!(
            pool.submit(&dyn_ring, short).unwrap_err(),
            Error::LengthMismatch { .. }
        ));
        // Mismatched binary operands get the dedicated variant, before
        // any split runs.
        let uneven = PolymulRequest::new(
            PolyOp::Cyclic,
            vec![0_u128; N - 1].into(),
            vec![0_u128; N].into(),
        );
        assert!(matches!(
            pool.submit(&dyn_ring, uneven).unwrap_err(),
            Error::OperandLengthMismatch { a, b } if a == N - 1 && b == N
        ));
        // Arity mismatches: a unary op with two operands, a binary op
        // with one.
        let two_for_unary = RingRequest::new(
            RingOp::Rescale,
            vec![0_u128; N].into(),
            Some(vec![0_u128; N].into()),
        );
        assert!(matches!(
            pool.submit(&dyn_ring, two_for_unary).unwrap_err(),
            Error::OperandCountMismatch {
                op: "rescale",
                expected: 1,
                got: 2
            }
        ));
        let one_for_binary = RingRequest::new(RingOp::Add, vec![0_u128; N].into(), None);
        assert!(matches!(
            pool.submit(&dyn_ring, one_for_binary).unwrap_err(),
            Error::OperandCountMismatch {
                op: "add",
                expected: 2,
                got: 1
            }
        ));
        // An op the ring cannot execute is rejected before queueing.
        let rescale_on_word = RingRequest::rescale(vec![0_u128; N].into());
        assert!(matches!(
            pool.submit(&dyn_ring, rescale_on_word).unwrap_err(),
            Error::UnsupportedOp { op: "rescale", .. }
        ));
        // Wrong representation.
        let big = PolymulRequest::new(
            PolyOp::Cyclic,
            vec![BigUint::zero(); N].into(),
            vec![BigUint::zero(); N].into(),
        );
        assert!(matches!(
            pool.submit(&dyn_ring, big).unwrap_err(),
            Error::CoefficientKind { .. }
        ));
        // Negacyclic on a ring without a 2n-th root.
        let no_nega: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q14, 1024).unwrap());
        let req = PolymulRequest::new(
            PolyOp::Negacyclic,
            vec![0_u128; 1024].into(),
            vec![0_u128; 1024].into(),
        );
        assert!(matches!(
            pool.submit(&no_nega, req).unwrap_err(),
            Error::NoNegacyclicSupport { n: 1024 }
        ));
    }

    #[test]
    fn handles_resolve_out_of_submission_order() {
        let dyn_ring: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q124, N).unwrap());
        let pool = RingExecutor::new(2).unwrap();
        let mut handles = Vec::new();
        let mut expected = Vec::new();
        for i in 0..16_u64 {
            let a = poly(N, primes::Q124, i * 2 + 1);
            let b = poly(N, primes::Q124, i * 2 + 2);
            expected.push(
                dyn_ring
                    .polymul(PolyOp::Cyclic, &a.clone().into(), &b.clone().into())
                    .unwrap(),
            );
            handles.push(
                pool.submit(
                    &dyn_ring,
                    PolymulRequest::new(PolyOp::Cyclic, a.into(), b.into()),
                )
                .unwrap(),
            );
        }
        // Wait in reverse order: completion order must not matter.
        for (handle, want) in handles.into_iter().rev().zip(expected.into_iter().rev()) {
            assert_eq!(handle.wait().unwrap(), want);
        }
    }

    #[test]
    fn mixed_priorities_all_complete_with_correct_results() {
        // Correctness (not ordering — that needs a saturated 1-worker
        // pool, covered by tests/executor_qos.rs): every class's product
        // is bit-identical to the direct call.
        let dyn_ring: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q124, N).unwrap());
        let pool = RingExecutor::new(2).unwrap();
        let mut handles = Vec::new();
        let mut expected = Vec::new();
        for (i, priority) in (0..12_u64).zip(Priority::ALL.into_iter().cycle()) {
            let a = poly(N, primes::Q124, i * 2 + 31);
            let b = poly(N, primes::Q124, i * 2 + 32);
            expected.push(
                dyn_ring
                    .polymul(PolyOp::Cyclic, &a.clone().into(), &b.clone().into())
                    .unwrap(),
            );
            handles.push(
                pool.submit(
                    &dyn_ring,
                    PolymulRequest::new(PolyOp::Cyclic, a.into(), b.into()).with_priority(priority),
                )
                .unwrap(),
            );
        }
        for (handle, want) in handles.into_iter().zip(expected) {
            assert_eq!(handle.wait().unwrap(), want);
        }
    }

    #[test]
    fn expired_deadline_resolves_without_queueing() {
        let dyn_ring: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q124, N).unwrap());
        let pool = RingExecutor::new(1).unwrap();
        let a = poly(N, primes::Q124, 3);
        let handle = pool
            .submit(
                &dyn_ring,
                PolymulRequest::new(PolyOp::Cyclic, a.clone().into(), a.into())
                    .with_deadline(Instant::now()),
            )
            .unwrap();
        // Resolved synchronously at submit: no worker involved.
        assert!(handle.is_finished());
        assert!(matches!(
            handle.wait().unwrap_err(),
            Error::DeadlineExceeded
        ));
    }

    #[test]
    fn one_executor_serves_multiple_rings() {
        let word: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q124, N).unwrap());
        let wide: Arc<dyn PolyRing> = Arc::new(RnsRing::auto(2, N).unwrap());
        let pool = RingExecutor::new(2).unwrap();

        let wa = poly(N, primes::Q124, 5);
        let word_handle = pool
            .submit(
                &word,
                PolymulRequest::new(PolyOp::Cyclic, wa.clone().into(), wa.clone().into()),
            )
            .unwrap();
        let ba: Vec<BigUint> = (0..N as u64).map(BigUint::from).collect();
        let wide_handle = pool
            .submit(
                &wide,
                PolymulRequest::new(PolyOp::Cyclic, ba.clone().into(), ba.clone().into()),
            )
            .unwrap();
        assert_eq!(
            word_handle.wait().unwrap(),
            word.polymul(PolyOp::Cyclic, &wa.clone().into(), &wa.into())
                .unwrap()
        );
        assert_eq!(
            wide_handle.wait().unwrap(),
            wide.polymul(PolyOp::Cyclic, &ba.clone().into(), &ba.into())
                .unwrap()
        );
    }

    #[test]
    fn panicking_join_surfaces_as_join_error_not_a_dead_worker() {
        /// A ring whose CRT join always panics — stands in for a
        /// misbehaving third-party [`PolyRing`] impl.
        struct BadJoin(Ring);
        impl PolyRing for BadJoin {
            fn size(&self) -> usize {
                self.0.size()
            }
            fn modulus_bits(&self) -> u64 {
                PolyRing::modulus_bits(&self.0)
            }
            fn supports_negacyclic(&self) -> bool {
                self.0.supports_negacyclic()
            }
            fn channels(&self) -> usize {
                1
            }
            fn split(&self, coeffs: &Coefficients) -> Result<Vec<Vec<u128>>, Error> {
                PolyRing::split(&self.0, coeffs)
            }
            fn channel_polymul(
                &self,
                channel: usize,
                op: PolyOp,
                a: &[u128],
                b: &[u128],
            ) -> Result<Vec<u128>, Error> {
                PolyRing::channel_polymul(&self.0, channel, op, a, b)
            }
            fn join(&self, _: Vec<Vec<u128>>) -> Result<Coefficients, Error> {
                panic!("join bomb")
            }
        }

        let bad: Arc<dyn PolyRing> = Arc::new(BadJoin(Ring::auto(primes::Q124, N).unwrap()));
        let pool = RingExecutor::new(1).unwrap();
        let a = poly(N, primes::Q124, 13);
        let handle = pool
            .submit(
                &bad,
                PolymulRequest::new(PolyOp::Cyclic, a.clone().into(), a.clone().into()),
            )
            .unwrap();
        assert!(matches!(handle.wait().unwrap_err(), Error::JoinPanicked));

        // The single worker survived the panic: a well-behaved ring is
        // still served by the same pool.
        let good: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q124, N).unwrap());
        let handle = pool
            .submit(
                &good,
                PolymulRequest::new(PolyOp::Cyclic, a.clone().into(), a.into()),
            )
            .unwrap();
        assert!(handle.wait().is_ok());
    }

    #[test]
    fn degenerate_empty_split_is_rejected_at_submit() {
        /// A ring whose split yields no channels at all — without the
        /// submit guard this would wrap the remaining counter and hang
        /// the handle.
        struct NoChannels;
        impl PolyRing for NoChannels {
            fn size(&self) -> usize {
                4
            }
            fn modulus_bits(&self) -> u64 {
                1
            }
            fn supports_negacyclic(&self) -> bool {
                false
            }
            fn channels(&self) -> usize {
                0
            }
            fn split(&self, _: &Coefficients) -> Result<Vec<Vec<u128>>, Error> {
                Ok(Vec::new())
            }
            fn channel_polymul(
                &self,
                channel: usize,
                _: PolyOp,
                _: &[u128],
                _: &[u128],
            ) -> Result<Vec<u128>, Error> {
                Err(Error::ChannelOutOfRange {
                    channel,
                    channels: 0,
                })
            }
            fn join(&self, _: Vec<Vec<u128>>) -> Result<Coefficients, Error> {
                Ok(Coefficients::Word(Vec::new()))
            }
        }

        let ring: Arc<dyn PolyRing> = Arc::new(NoChannels);
        let pool = RingExecutor::new(1).unwrap();
        let req = PolymulRequest::new(
            PolyOp::Cyclic,
            vec![0_u128; 4].into(),
            vec![0_u128; 4].into(),
        );
        assert!(matches!(
            pool.submit(&ring, req).unwrap_err(),
            Error::ChannelCountMismatch { got: 0, .. }
        ));
    }

    #[test]
    fn dropping_unwaited_handles_does_not_wedge_the_pool() {
        let dyn_ring: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q124, N).unwrap());
        let pool = RingExecutor::new(2).unwrap();
        let a = poly(N, primes::Q124, 9);
        for _ in 0..8 {
            let _ = pool
                .submit(
                    &dyn_ring,
                    PolymulRequest::new(PolyOp::Cyclic, a.clone().into(), a.clone().into()),
                )
                .unwrap();
        }
        // A subsequent waited request still completes.
        let handle = pool
            .submit(
                &dyn_ring,
                PolymulRequest::new(PolyOp::Cyclic, a.clone().into(), a.clone().into()),
            )
            .unwrap();
        assert!(handle.wait().is_ok());
        // Drop tears the pool down without hanging.
        drop(pool);
    }
}
