//! A keyed cache of [`NttPlan`]s, so rings can be opened per-request
//! without re-paying the `O(n log n)` twiddle-table build.
//!
//! Plans are immutable once built and independent of the executing
//! backend, so one plan can back any number of [`Ring`](crate::Ring)s
//! across threads — the cache hands out [`Arc`] clones keyed by
//! `(modulus, multiplication algorithm, n)`. A server opening a ring
//! per request, or an [`RnsRing`](crate::RnsRing) opening one ring per
//! residue channel, pays the table build exactly once per distinct key.
//!
//! The process-wide [`global`] cache is what [`Ring`](crate::Ring) and
//! [`RnsRing`](crate::RnsRing) use by default; independent
//! [`PlanCache`] instances exist for isolation (tests asserting hit
//! counts, tenants with separate capacity).
//!
//! ```
//! use mqx::{core::primes, plan_cache, Ring};
//!
//! let before = plan_cache::global().stats();
//! let _a = Ring::auto(primes::Q124, 256)?;
//! let _b = Ring::auto(primes::Q124, 256)?; // same key: served from cache
//! let after = plan_cache::global().stats();
//! assert!(after.hits > before.hits);
//! # Ok::<(), mqx::Error>(())
//! ```

use crate::error::Error;
use mqx_core::{Modulus, MulAlgorithm};
use mqx_ntt::NttPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The cache key: everything [`NttPlan::new`] depends on.
type PlanKey = (u128, MulAlgorithm, usize);

/// Counters describing a cache's traffic, from [`PlanCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an already-built plan.
    pub hits: u64,
    /// Lookups that had to build (and insert) a plan.
    pub misses: u64,
    /// Distinct plans currently held.
    pub entries: usize,
}

/// A keyed `(modulus, algorithm, n) → Arc<NttPlan>` cache with hit/miss
/// counters.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, Arc<NttPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Returns the plan for `(modulus, n)`, building and caching it on
    /// first use. The lock is held across a miss's table build, so
    /// concurrent requests for one key build it exactly once.
    ///
    /// # Errors
    ///
    /// [`Error::Ntt`] when no plan exists for the requested size (not
    /// cached: the same request fails identically every time).
    pub fn plan_for(&self, modulus: &Modulus, n: usize) -> Result<Arc<NttPlan>, Error> {
        let key: PlanKey = (modulus.value(), modulus.algorithm(), n);
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        if let Some(plan) = plans.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        let plan = Arc::new(NttPlan::new(modulus, n)?);
        plans.insert(key, Arc::clone(&plan));
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(plan)
    }

    /// Current hit/miss/entry counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.plans.lock().expect("plan cache poisoned").len(),
        }
    }

    /// Drops every cached plan (outstanding `Arc`s stay valid). The
    /// counters are not reset.
    pub fn clear(&self) {
        self.plans.lock().expect("plan cache poisoned").clear();
    }
}

/// The process-wide cache every [`Ring`](crate::Ring) and
/// [`RnsRing`](crate::RnsRing) uses unless a builder pins another one.
pub fn global() -> &'static Arc<PlanCache> {
    static GLOBAL: OnceLock<Arc<PlanCache>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(PlanCache::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqx_core::primes;
    use mqx_ntt::NttError;

    #[test]
    fn second_lookup_hits_and_shares_the_plan() {
        let cache = PlanCache::new();
        let m = Modulus::new_prime(primes::Q124).unwrap();
        let a = cache.plan_for(&m, 64).unwrap();
        let b = cache.plan_for(&m, 64).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one build, shared plan");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
    }

    #[test]
    fn distinct_keys_build_distinct_plans() {
        let cache = PlanCache::new();
        let m = Modulus::new_prime(primes::Q124).unwrap();
        let k = m.with_algorithm(MulAlgorithm::Karatsuba);
        cache.plan_for(&m, 64).unwrap();
        cache.plan_for(&m, 128).unwrap(); // different n
        cache.plan_for(&k, 64).unwrap(); // different algorithm
        cache
            .plan_for(&Modulus::new_prime(primes::Q62).unwrap(), 64)
            .unwrap(); // different modulus
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 4, 4));
    }

    #[test]
    fn failures_are_reported_and_not_cached() {
        let cache = PlanCache::new();
        let m = Modulus::new_prime(primes::Q124).unwrap();
        assert!(matches!(
            cache.plan_for(&m, 12).unwrap_err(),
            Error::Ntt(NttError::SizeNotPowerOfTwo { .. })
        ));
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn clear_keeps_counters_and_outstanding_plans() {
        let cache = PlanCache::new();
        let m = Modulus::new_prime(primes::Q124).unwrap();
        let plan = cache.plan_for(&m, 64).unwrap();
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(plan.size(), 64, "outstanding Arc still valid");
        // Re-requesting after clear rebuilds.
        cache.plan_for(&m, 64).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn global_cache_is_shared() {
        assert!(Arc::ptr_eq(global(), global()));
    }
}
