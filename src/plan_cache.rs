//! A keyed cache of [`NttPlan`]s, so rings can be opened per-request
//! without re-paying the `O(n log n)` twiddle-table build.
//!
//! Plans are immutable once built and independent of the executing
//! backend, so one plan can back any number of [`Ring`](crate::Ring)s
//! across threads — the cache hands out [`Arc`] clones keyed by
//! `(modulus, multiplication algorithm, n)`. A server opening a ring
//! per request, or an [`RnsRing`](crate::RnsRing) opening one ring per
//! residue channel, pays the table build exactly once per distinct key.
//!
//! The process-wide [`global`] cache is what [`Ring`](crate::Ring) and
//! [`RnsRing`](crate::RnsRing) use by default; independent
//! [`PlanCache`] instances exist for isolation (tests asserting hit
//! counts, tenants with separate capacity). Long-lived servers that see
//! many distinct geometries can bound a cache with
//! [`PlanCache::with_capacity`]: the least-recently-used plan is
//! evicted on overflow, and because entries are `Arc`s, eviction never
//! invalidates a live ring — it only makes the *next* open of that
//! geometry rebuild.
//!
//! ```
//! use mqx::{core::primes, plan_cache, Ring};
//!
//! let before = plan_cache::global().stats();
//! let _a = Ring::auto(primes::Q124, 256)?;
//! let _b = Ring::auto(primes::Q124, 256)?; // same key: served from cache
//! let after = plan_cache::global().stats();
//! assert!(after.hits > before.hits);
//! # Ok::<(), mqx::Error>(())
//! ```

use crate::error::Error;
use mqx_core::{Modulus, MulAlgorithm};
use mqx_ntt::NttPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The cache key: everything [`NttPlan::new`] depends on.
type PlanKey = (u128, MulAlgorithm, usize);

/// Counters describing a cache's traffic, from [`PlanCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an already-built plan.
    pub hits: u64,
    /// Lookups that had to build (and insert) a plan.
    pub misses: u64,
    /// Plans evicted by the LRU capacity bound (always 0 for unbounded
    /// caches).
    pub evictions: u64,
    /// Distinct plans currently held.
    pub entries: usize,
}

/// One cached plan plus its recency stamp for LRU eviction.
struct CacheEntry {
    plan: Arc<NttPlan>,
    /// Logical clock value of the most recent lookup that touched this
    /// entry.
    last_used: u64,
}

/// The keyed map plus the logical clock, guarded by one mutex.
#[derive(Default)]
struct Inner {
    plans: HashMap<PlanKey, CacheEntry>,
    tick: u64,
}

/// A keyed `(modulus, algorithm, n) → Arc<NttPlan>` cache with hit,
/// miss and eviction counters, optionally bounded by an LRU capacity.
#[derive(Default)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    /// `None` = unbounded ([`PlanCache::new`]); `Some(k)` = at most `k`
    /// plans, LRU-evicted on overflow.
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PlanCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Creates an empty cache holding at most `capacity` plans: when an
    /// insert would exceed the bound, the least-recently-used plan is
    /// dropped from the cache (outstanding [`Arc`]s — i.e. live rings —
    /// stay valid) and the eviction counter increments.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (a cache that can hold nothing would
    /// turn every lookup into a rebuild; use no cache instead).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "plan cache capacity must be at least 1");
        PlanCache {
            capacity: Some(capacity),
            ..PlanCache::default()
        }
    }

    /// The capacity bound, if this cache has one.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Returns the plan for `(modulus, n)`, building and caching it on
    /// first use. The lock is held across a miss's table build, so
    /// concurrent requests for one key build it exactly once.
    ///
    /// # Errors
    ///
    /// [`Error::Ntt`] when no plan exists for the requested size (not
    /// cached: the same request fails identically every time).
    pub fn plan_for(&self, modulus: &Modulus, n: usize) -> Result<Arc<NttPlan>, Error> {
        let key: PlanKey = (modulus.value(), modulus.algorithm(), n);
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.plans.get_mut(&key) {
            entry.last_used = tick;
            // ORDERING: statistics counter; Relaxed because the map
            // itself is protected by the mutex above and nothing is
            // published through the counter.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&entry.plan));
        }
        let plan = Arc::new(NttPlan::new(modulus, n)?);
        inner.plans.insert(
            key,
            CacheEntry {
                plan: Arc::clone(&plan),
                last_used: tick,
            },
        );
        // ORDERING: statistics counter, as for `hits` above.
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(capacity) = self.capacity {
            while inner.plans.len() > capacity {
                // The just-inserted entry carries the newest stamp, so
                // the minimum is always an older entry.
                let oldest = inner
                    .plans
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                    .expect("non-empty over-capacity map");
                inner.plans.remove(&oldest);
                // ORDERING: statistics counter, as for `hits` above.
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(plan)
    }

    /// Current hit/miss/eviction/entry counters.
    pub fn stats(&self) -> CacheStats {
        // ORDERING: Relaxed counter reads — the snapshot is advisory
        // and intentionally not atomic across the three counters.
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("plan cache poisoned").plans.len(),
        }
    }

    /// Drops every cached plan (outstanding `Arc`s stay valid). The
    /// counters are not reset, and explicit clears do not count as
    /// evictions.
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .plans
            .clear();
    }
}

/// The process-wide cache every [`Ring`](crate::Ring) and
/// [`RnsRing`](crate::RnsRing) uses unless a builder pins another one.
/// Unbounded: servers that cycle through many geometries should pin a
/// [`PlanCache::with_capacity`] instance via the ring builders.
pub fn global() -> &'static Arc<PlanCache> {
    static GLOBAL: OnceLock<Arc<PlanCache>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(PlanCache::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqx_core::primes;
    use mqx_ntt::NttError;

    #[test]
    fn second_lookup_hits_and_shares_the_plan() {
        let cache = PlanCache::new();
        let m = Modulus::new_prime(primes::Q124).unwrap();
        let a = cache.plan_for(&m, 64).unwrap();
        let b = cache.plan_for(&m, 64).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one build, shared plan");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                entries: 1
            }
        );
    }

    #[test]
    fn distinct_keys_build_distinct_plans() {
        let cache = PlanCache::new();
        let m = Modulus::new_prime(primes::Q124).unwrap();
        let k = m.with_algorithm(MulAlgorithm::Karatsuba);
        cache.plan_for(&m, 64).unwrap();
        cache.plan_for(&m, 128).unwrap(); // different n
        cache.plan_for(&k, 64).unwrap(); // different algorithm
        cache
            .plan_for(&Modulus::new_prime(primes::Q62).unwrap(), 64)
            .unwrap(); // different modulus
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 4, 4));
    }

    #[test]
    fn failures_are_reported_and_not_cached() {
        let cache = PlanCache::new();
        let m = Modulus::new_prime(primes::Q124).unwrap();
        assert!(matches!(
            cache.plan_for(&m, 12).unwrap_err(),
            Error::Ntt(NttError::SizeNotPowerOfTwo { .. })
        ));
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn clear_keeps_counters_and_outstanding_plans() {
        let cache = PlanCache::new();
        let m = Modulus::new_prime(primes::Q124).unwrap();
        let plan = cache.plan_for(&m, 64).unwrap();
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().evictions, 0, "clear is not an eviction");
        assert_eq!(plan.size(), 64, "outstanding Arc still valid");
        // Re-requesting after clear rebuilds.
        cache.plan_for(&m, 64).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn global_cache_is_shared() {
        assert!(Arc::ptr_eq(global(), global()));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = PlanCache::with_capacity(0);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache = PlanCache::with_capacity(2);
        assert_eq!(cache.capacity(), Some(2));
        let m = Modulus::new_prime(primes::Q124).unwrap();
        cache.plan_for(&m, 64).unwrap(); // A
        cache.plan_for(&m, 128).unwrap(); // B
        cache.plan_for(&m, 64).unwrap(); // touch A: B is now LRU
        cache.plan_for(&m, 256).unwrap(); // C evicts B
        let stats = cache.stats();
        assert_eq!((stats.evictions, stats.entries), (1, 2));
        // A survived (hit), B rebuilds (miss).
        cache.plan_for(&m, 64).unwrap();
        assert_eq!(cache.stats().hits, 2);
        cache.plan_for(&m, 128).unwrap();
        assert_eq!(cache.stats().misses, 4, "B was evicted and rebuilt");
    }

    #[test]
    fn eviction_preserves_arc_sharing_for_live_rings() {
        use crate::Ring;
        let cache = Arc::new(PlanCache::with_capacity(1));
        let build = |n: usize| {
            Ring::builder(primes::Q124, n)
                .backend_name("portable")
                .plan_cache(Arc::clone(&cache))
                .build()
                .unwrap()
        };
        // Two rings on one geometry share the cached plan.
        let r1 = build(64);
        let r2 = build(64);
        assert!(Arc::ptr_eq(&r1.plan_arc(), &r2.plan_arc()));
        // A different geometry evicts it from the cache...
        let r3 = build(128);
        assert_eq!(cache.stats().evictions, 1);
        // ...but the live rings keep sharing the evicted plan and stay
        // fully usable.
        assert!(Arc::ptr_eq(&r1.plan_arc(), &r2.plan_arc()));
        let xs: Vec<u128> = (0..64).collect();
        assert_eq!(
            r1.polymul_cyclic(&xs, &xs).unwrap(),
            r2.polymul_cyclic(&xs, &xs).unwrap()
        );
        // A re-open of the evicted geometry rebuilds a fresh plan.
        let r4 = build(64);
        assert!(!Arc::ptr_eq(&r1.plan_arc(), &r4.plan_arc()));
        assert_eq!(r3.size(), 128);
    }
}
