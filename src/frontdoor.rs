//! The async front door: [`Future`]-based request handles plus bounded
//! admission control over a [`RingExecutor`] — the layer that lets a
//! network service sit on the executor without unbounded memory and
//! without a thread parked per in-flight request.
//!
//! PR 5 gave the executor serving QoS (priorities, deadlines,
//! cancellation) and PR 6–7 a multi-op vocabulary on fused kernels;
//! what a million-user service still needs from the front door are the
//! two properties every production queue has:
//!
//! 1. **Asynchronous completion.** [`FrontDoor::submit`] returns an
//!    [`AsyncRequestHandle`] implementing
//!    [`std::future::Future`]`<Output = Result<Coefficients, Error>>`.
//!    The future parks its [`Waker`] in the request's
//!    shared outcome slot; the worker that publishes the outcome (last
//!    channel joined — or the request shed at its deadline, or
//!    cancelled) fires it exactly once. No polling thread, no condvar
//!    parked per request. Std wakers only — the build is offline, so a
//!    minimal [`block_on`] executor (and a [`join_all`] combinator) is
//!    shipped here for tests, examples, and thread-per-core servers;
//!    any waker-driven runtime can drive the same futures.
//! 2. **Bounded admission.** Each [`Priority`] class has a configurable
//!    queue-depth limit ([`FrontDoorBuilder::queue_depth`] /
//!    [`FrontDoorBuilder::queue_depth_for`]). A submit that would push
//!    a class past its limit is **shed at submit**: it resolves
//!    immediately with [`Error::Overloaded`], executes zero channels,
//!    and never blocks the caller — overload sheds load instead of
//!    growing queues until memory does the shedding. Well-behaved
//!    clients that prefer waiting to shedding take the other door:
//!    [`FrontDoor::reserve`] blocks until the class has capacity and
//!    returns a [`Permit`] whose [`FrontDoor::submit_reserved`] cannot
//!    be shed.
//!
//! Every admission decision is counted in an [`AdmissionStats`]
//! snapshot (atomics only): `admitted + shed_at_submit == submitted`
//! always reconciles, deadline sheds and cancellations are counted at
//! outcome publication (so they stay exact even when the caller drops a
//! future without awaiting it), and per-class queue high-water marks
//! show how close each class ran to its limit.
//!
//! The unit of admission is the *request*, whatever its shape: a
//! multi-node [`OpGraph`](crate::OpGraph) request submitted via
//! [`RingRequest::graph`](crate::RingRequest::graph) occupies one
//! queue slot, resolves through one future, and counts once in every
//! stat, exactly like a single-op request — however many node ×
//! channel work items it fans out to behind the door.
//!
//! ```
//! use std::sync::Arc;
//! use mqx::core::primes;
//! use mqx::frontdoor::{block_on, join_all, FrontDoor};
//! use mqx::{PolyOp, PolyRing, PolymulRequest, Ring};
//!
//! let ring: Arc<dyn PolyRing> = Arc::new(Ring::auto(primes::Q124, 64)?);
//! let door = FrontDoor::builder(2).queue_depth(64).build()?;
//!
//! // Submit a burst, then await the whole batch through one join.
//! let futures: Vec<_> = (0..8_u64)
//!     .map(|i| {
//!         let a: Vec<u128> = (0..64).map(|j| u128::from(i + j)).collect();
//!         door.submit(
//!             &ring,
//!             PolymulRequest::new(PolyOp::Negacyclic, a.clone().into(), a.into()),
//!         )
//!     })
//!     .collect::<Result<_, _>>()?;
//! let products = block_on(join_all(futures));
//! assert_eq!(products.len(), 8);
//! for product in products {
//!     assert_eq!(product?.len(), 64);
//! }
//!
//! let stats = door.stats();
//! assert!(stats.reconciles());
//! assert_eq!(stats.admitted, 8);
//! # Ok::<(), mqx::Error>(())
//! ```

use crate::error::Error;
use crate::executor::{
    Canceller, Priority, PublishHook, RequestHandle, RingExecutor, RingRequest, CLASSES,
};
use crate::poly::{Coefficients, PolyRing};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

/// Default per-class queue-depth limit when the builder does not set
/// one: deep enough that a well-provisioned service never notices it,
/// bounded enough that a stalled pool sheds instead of swallowing the
/// caller's memory.
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

/// How often a blocked [`FrontDoor::reserve`] re-checks the executor's
/// queue depth. Capacity freed by a permit drop is notified instantly;
/// capacity freed by a worker dequeuing a request is observed on this
/// tick (the executor's hot path stays free of admission bookkeeping).
const RESERVE_TICK: Duration = Duration::from_millis(1);

// ---------------------------------------------------------------------------
// Async handles
// ---------------------------------------------------------------------------

/// A [`Future`]-based claim on one submitted request's eventual result
/// — the async twin of [`RequestHandle`].
///
/// Await it on any waker-driven runtime (or this module's [`block_on`]):
/// the waker is parked in the request's shared outcome slot and fired
/// exactly once when the outcome is published — the last channel
/// joining, a deadline shed, or a cancellation. Re-polling before
/// completion replaces the parked waker, so the future is safe to move
/// between tasks.
///
/// Dropping the future without awaiting it is fine: the request still
/// runs to completion (its result is discarded), and admission
/// statistics stay exact because sheds are counted at publication, not
/// at await. To actively discard queued work after dropping the future,
/// take a [`canceller`](AsyncRequestHandle::canceller) first.
#[must_use = "futures do nothing unless polled; block_on or join them"]
pub struct AsyncRequestHandle {
    inner: Inner,
}

enum Inner {
    /// In flight: polls delegate to the request's outcome slot.
    Pending(RequestHandle),
    /// Resolved before (or without) entering the executor — an
    /// [`Error::Overloaded`] shed at admission. `None` once taken.
    Ready(Option<Result<Coefficients, Error>>),
}

impl AsyncRequestHandle {
    fn pending(handle: RequestHandle) -> AsyncRequestHandle {
        AsyncRequestHandle {
            inner: Inner::Pending(handle),
        }
    }

    fn ready(result: Result<Coefficients, Error>) -> AsyncRequestHandle {
        AsyncRequestHandle {
            inner: Inner::Ready(Some(result)),
        }
    }

    /// Requests cooperative cancellation (see [`RequestHandle::cancel`]);
    /// a no-op for a request that already resolved (including one shed
    /// at admission).
    pub fn cancel(&self) {
        if let Inner::Pending(handle) = &self.inner {
            handle.cancel();
        }
    }

    /// A detached cancellation handle that outlives this future —
    /// `None` when the request already resolved at admission (there is
    /// nothing left to cancel). Lets a front end drop the result claim
    /// yet still discard the queued work later:
    /// drop-the-future-then-cancel is a supported order.
    pub fn canceller(&self) -> Option<Canceller> {
        match &self.inner {
            Inner::Pending(handle) => Some(handle.canceller()),
            Inner::Ready(_) => None,
        }
    }

    /// Whether the request has fully resolved (polling or
    /// [`wait`](AsyncRequestHandle::wait) would return immediately).
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            Inner::Pending(handle) => handle.is_finished(),
            Inner::Ready(result) => result.is_some(),
        }
    }

    /// The synchronous escape hatch: blocks the calling thread until
    /// the request resolves. Bit-identical to awaiting the future —
    /// both consume the same published outcome.
    pub fn wait(self) -> Result<Coefficients, Error> {
        match self.inner {
            Inner::Pending(handle) => handle.wait(),
            Inner::Ready(result) => result.expect("async handle consumed twice"),
        }
    }
}

impl Future for AsyncRequestHandle {
    type Output = Result<Coefficients, Error>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match &mut self.get_mut().inner {
            Inner::Pending(handle) => match handle.poll_take(cx.waker()) {
                Some(result) => Poll::Ready(result),
                None => Poll::Pending,
            },
            Inner::Ready(result) => {
                Poll::Ready(result.take().expect("async handle polled after completion"))
            }
        }
    }
}

impl std::fmt::Debug for AsyncRequestHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncRequestHandle")
            .field("finished", &self.is_finished())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Minimal std-only executor: block_on + join_all
// ---------------------------------------------------------------------------

/// The [`Waker`] behind [`block_on`]: wakes by unparking the polling
/// thread. `unpark` delivers a sticky token, so a wake landing between
/// a `poll` and the subsequent `park` is never lost.
struct ThreadUnparker {
    thread: std::thread::Thread,
}

impl Wake for ThreadUnparker {
    fn wake(self: Arc<Self>) {
        self.thread.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.thread.unpark();
    }
}

/// Drives a future to completion on the calling thread — the minimal
/// std-only async executor this offline build ships instead of pulling
/// in a runtime. Parks the thread between polls (no busy-spinning);
/// each wake unparks it for exactly one re-poll.
///
/// ```
/// use mqx::frontdoor::block_on;
/// assert_eq!(block_on(async { 2 + 2 }), 4);
/// ```
pub fn block_on<F: Future>(future: F) -> F::Output {
    let waker = Waker::from(Arc::new(ThreadUnparker {
        thread: std::thread::current(),
    }));
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            // Spurious unparks only cost a redundant poll; a missed
            // wake is impossible (the token is buffered).
            Poll::Pending => std::thread::park(),
        }
    }
}

/// One sub-future of a [`JoinAll`].
enum Slot<F: Future> {
    Pending(F),
    Done(F::Output),
    Taken,
}

/// Future returned by [`join_all`]: resolves once every sub-future has,
/// yielding their outputs in submission order.
#[must_use = "futures do nothing unless polled; block_on or join them"]
pub struct JoinAll<F: Future> {
    slots: Vec<Slot<F>>,
}

/// Joins a collection of futures into one future yielding every output
/// in input order — the batch-await a serving loop uses to collect a
/// burst of [`AsyncRequestHandle`]s in a single [`block_on`].
///
/// Completed sub-futures are never re-polled; the join resolves when
/// the last one does.
pub fn join_all<F, I>(futures: I) -> JoinAll<F>
where
    F: Future + Unpin,
    I: IntoIterator<Item = F>,
{
    JoinAll {
        slots: futures.into_iter().map(Slot::Pending).collect(),
    }
}

// Sound: `JoinAll` holds no self-references and never hands out a
// pinned view of an output value; with the futures themselves `Unpin`,
// moving the struct is always fine.
impl<F: Future + Unpin> Unpin for JoinAll<F> {}

impl<F: Future + Unpin> Future for JoinAll<F> {
    type Output = Vec<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut done = true;
        for slot in &mut this.slots {
            if let Slot::Pending(future) = slot {
                match Pin::new(future).poll(cx) {
                    Poll::Ready(value) => *slot = Slot::Done(value),
                    Poll::Pending => done = false,
                }
            }
        }
        if !done {
            return Poll::Pending;
        }
        Poll::Ready(
            this.slots
                .iter_mut()
                .map(|slot| match std::mem::replace(slot, Slot::Taken) {
                    Slot::Done(value) => value,
                    _ => panic!("JoinAll polled after completion"),
                })
                .collect(),
        )
    }
}

impl<F: Future> std::fmt::Debug for JoinAll<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pending = self
            .slots
            .iter()
            .filter(|s| matches!(s, Slot::Pending(_)))
            .count();
        f.debug_struct("JoinAll")
            .field("total", &self.slots.len())
            .field("pending", &pending)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Admission statistics
// ---------------------------------------------------------------------------

/// Lock-free admission counters (the internal form of
/// [`AdmissionStats`]).
#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    shed_at_submit: [AtomicU64; CLASSES],
    shed_at_deadline: AtomicU64,
    cancelled: AtomicU64,
    queue_high_water: [AtomicUsize; CLASSES],
}

/// A point-in-time snapshot of a [`FrontDoor`]'s admission accounting
/// ([`FrontDoor::stats`]). All counters are monotonic (atomics only, no
/// locks on the submit path); per-class arrays are indexed in
/// [`Priority::ALL`] drain order (`[High, Normal, Low]`) — or use the
/// `*_for` accessors.
///
/// The books always balance:
/// `admitted + shed_at_submit (summed) == submitted` — see
/// [`reconciles`](AdmissionStats::reconciles). `shed_at_deadline` and
/// `cancelled` count *admitted* requests by their eventual outcome,
/// recorded at publication (not at await), so they stay exact even for
/// futures the caller dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests offered to the front door (admitted or shed at submit;
    /// requests rejected by *validation* — malformed operands — are not
    /// counted).
    pub submitted: u64,
    /// Requests that entered the executor's queues.
    pub admitted: u64,
    /// Requests shed with [`Error::Overloaded`] because their class was
    /// at its depth limit, per class.
    pub shed_at_submit: [u64; CLASSES],
    /// Admitted requests whose outcome was
    /// [`Error::DeadlineExceeded`] (shed at submit-time expiry or at
    /// dequeue).
    pub shed_at_deadline: u64,
    /// Admitted requests whose outcome was [`Error::Cancelled`].
    pub cancelled: u64,
    /// The deepest each class's pending queue got at admission time,
    /// per class.
    pub queue_high_water: [usize; CLASSES],
}

impl AdmissionStats {
    /// Requests shed at submit across every class.
    pub fn shed_at_submit_total(&self) -> u64 {
        self.shed_at_submit.iter().sum()
    }

    /// Requests shed at submit in one class.
    pub fn shed_at_submit_for(&self, class: Priority) -> u64 {
        self.shed_at_submit[class.class()]
    }

    /// One class's queue high-water mark.
    pub fn high_water_for(&self, class: Priority) -> usize {
        self.queue_high_water[class.class()]
    }

    /// Whether the books balance: every request offered to the front
    /// door was either admitted or shed at submit.
    pub fn reconciles(&self) -> bool {
        self.admitted + self.shed_at_submit_total() == self.submitted
    }
}

// ---------------------------------------------------------------------------
// The front door
// ---------------------------------------------------------------------------

/// Configures and builds a [`FrontDoor`]: worker count plus per-class
/// admission depth limits.
///
/// ```
/// use mqx::frontdoor::FrontDoor;
/// use mqx::Priority;
///
/// let door = FrontDoor::builder(2)
///     .queue_depth(256)                      // all classes
///     .queue_depth_for(Priority::Low, 32)    // bulk work gets less slack
///     .build()?;
/// assert_eq!(door.queue_depth_limit(Priority::Low), 32);
/// assert_eq!(door.queue_depth_limit(Priority::High), 256);
/// # Ok::<(), mqx::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct FrontDoorBuilder {
    workers: usize,
    depths: [usize; CLASSES],
}

impl FrontDoorBuilder {
    /// Starts a builder for a front door over a fresh pool of `workers`
    /// threads, every class at [`DEFAULT_QUEUE_DEPTH`].
    pub fn new(workers: usize) -> FrontDoorBuilder {
        FrontDoorBuilder {
            workers,
            depths: [DEFAULT_QUEUE_DEPTH; CLASSES],
        }
    }

    /// Sets every class's queue-depth limit. A class whose pending
    /// queue is at its limit sheds further submits with
    /// [`Error::Overloaded`]; depth `0` sheds every unreserved submit
    /// of that class.
    pub fn queue_depth(mut self, depth: usize) -> FrontDoorBuilder {
        self.depths = [depth; CLASSES];
        self
    }

    /// Sets one class's queue-depth limit (see
    /// [`queue_depth`](FrontDoorBuilder::queue_depth)).
    pub fn queue_depth_for(mut self, class: Priority, depth: usize) -> FrontDoorBuilder {
        self.depths[class.class()] = depth;
        self
    }

    /// Builds the front door (starting its executor's worker threads).
    ///
    /// # Errors
    ///
    /// [`Error::NoWorkers`] when the builder was given zero workers.
    pub fn build(self) -> Result<FrontDoor, Error> {
        Ok(FrontDoor {
            pool: RingExecutor::new(self.workers)?,
            limits: self.depths,
            admission: Mutex::new([0; CLASSES]),
            freed: Condvar::new(),
            counters: Arc::new(Counters::default()),
        })
    }
}

/// The admission-controlled async façade over a [`RingExecutor`]: what
/// a network service actually fronts the executor with.
///
/// * [`submit`](FrontDoor::submit) — admit-or-shed, returning an
///   [`AsyncRequestHandle`] future; a class at its depth limit resolves
///   the future immediately with [`Error::Overloaded`] (zero channels
///   executed, zero blocking).
/// * [`reserve`](FrontDoor::reserve) /
///   [`submit_reserved`](FrontDoor::submit_reserved) — the backpressure
///   path: block until the class has capacity, then submit unsheddable.
/// * [`stats`](FrontDoor::stats) — the reconciling [`AdmissionStats`]
///   snapshot.
///
/// The door owns its executor; [`executor`](FrontDoor::executor)
/// exposes it for blocking-style submits against the same pool (the
/// admission limits only govern requests that come through the door).
pub struct FrontDoor {
    pool: RingExecutor,
    limits: [usize; CLASSES],
    /// Per-class count of outstanding [`Permit`]s. A reservation holds
    /// a queue slot that is not yet in the injector, so admission
    /// compares `queued + reserved` against the limit. Doubles as the
    /// serialization point for check-then-enqueue: depth checks and the
    /// enqueue they authorize happen under this lock, so concurrent
    /// submits cannot conspire past a limit.
    admission: Mutex<[usize; CLASSES]>,
    /// Notified when a permit releases capacity (dropped or spent).
    freed: Condvar,
    counters: Arc<Counters>,
}

impl FrontDoor {
    /// Starts configuring a front door (see [`FrontDoorBuilder`]).
    pub fn builder(workers: usize) -> FrontDoorBuilder {
        FrontDoorBuilder::new(workers)
    }

    /// A front door over `workers` threads with every class at
    /// [`DEFAULT_QUEUE_DEPTH`].
    ///
    /// # Errors
    ///
    /// [`Error::NoWorkers`] when `workers == 0`.
    pub fn new(workers: usize) -> Result<FrontDoor, Error> {
        FrontDoorBuilder::new(workers).build()
    }

    /// The executor behind the door — for blocking-handle submits
    /// against the same worker pool. Requests submitted directly bypass
    /// admission control (and its statistics).
    pub fn executor(&self) -> &RingExecutor {
        &self.pool
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// One class's configured admission depth limit.
    pub fn queue_depth_limit(&self, class: Priority) -> usize {
        self.limits[class.class()]
    }

    /// The outcome observer installed on every admitted request: counts
    /// deadline sheds and cancellations at publication, so the stats
    /// stay exact even when the caller never awaits the future.
    fn publish_hook(&self) -> PublishHook {
        let counters = Arc::clone(&self.counters);
        // ORDERING: all AdmissionStats counters are Relaxed — they are
        // monotonic statistics; nothing is published through them and
        // `stats()` reads are intentionally non-atomic snapshots.
        Box::new(move |outcome| match outcome {
            Err(Error::DeadlineExceeded) => {
                counters.shed_at_deadline.fetch_add(1, Ordering::Relaxed);
            }
            Err(Error::Cancelled) => {
                counters.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        })
    }

    /// Submits one request through admission control, returning its
    /// completion future.
    ///
    /// A request whose [`Priority`] class is at its depth limit is
    /// **shed**: the returned future resolves immediately with
    /// [`Error::Overloaded`] — it never enters the executor, executes
    /// zero channels, and never blocks the caller. (Shedding is the
    /// overload response a service wants on its *unreserved* path;
    /// see [`reserve`](FrontDoor::reserve) for backpressure instead.)
    ///
    /// # Errors
    ///
    /// Validation failures only (the same submit-time checks as
    /// [`RingExecutor::submit`]: arity, operand lengths, coefficient
    /// representation, unsupported ops). Overload is *not* an `Err`
    /// from this method — it resolves through the future, exactly like
    /// every other per-request serving outcome.
    pub fn submit(
        &self,
        ring: &Arc<dyn PolyRing>,
        request: impl Into<RingRequest>,
    ) -> Result<AsyncRequestHandle, Error> {
        let request: RingRequest = request.into();
        let class = request.options().priority;
        let idx = class.class();
        let guard = self.admission.lock().expect("admission lock poisoned");
        let queued = self.pool.queue_depth(class);
        if queued + guard[idx] >= self.limits[idx] {
            drop(guard);
            // ORDERING: Relaxed statistics counters (see publish_hook).
            self.counters.submitted.fetch_add(1, Ordering::Relaxed);
            self.counters.shed_at_submit[idx].fetch_add(1, Ordering::Relaxed);
            return Ok(AsyncRequestHandle::ready(Err(Error::Overloaded {
                class,
                depth: self.limits[idx],
            })));
        }
        let handle = self
            .pool
            .submit_with_hook(ring, request, Some(self.publish_hook()))?;
        drop(guard);
        // ORDERING: Relaxed statistics counters (see publish_hook).
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);
        self.counters.queue_high_water[idx].fetch_max(queued + 1, Ordering::Relaxed);
        Ok(AsyncRequestHandle::pending(handle))
    }

    /// Tries to reserve one queue slot in `class` without blocking:
    /// `None` when the class is at its limit. The returned [`Permit`]
    /// holds the slot until it is spent
    /// ([`submit_reserved`](FrontDoor::submit_reserved)) or dropped.
    pub fn try_reserve(&self, class: Priority) -> Option<Permit<'_>> {
        let idx = class.class();
        let mut reserved = self.admission.lock().expect("admission lock poisoned");
        if self.pool.queue_depth(class) + reserved[idx] >= self.limits[idx] {
            return None;
        }
        reserved[idx] += 1;
        Some(Permit {
            door: self,
            class,
            armed: true,
        })
    }

    /// Reserves one queue slot in `class`, blocking until the class has
    /// capacity — backpressure for well-behaved clients, instead of the
    /// shedding an unreserved [`submit`](FrontDoor::submit) risks.
    /// Capacity freed by other permits is picked up immediately;
    /// capacity freed by workers draining the queue is observed on a
    /// millisecond tick.
    ///
    /// A class with depth limit `0` can never gain capacity; prefer
    /// [`reserve_timeout`](FrontDoor::reserve_timeout) when the limit
    /// is not known to be positive.
    pub fn reserve(&self, class: Priority) -> Permit<'_> {
        loop {
            match self.reserve_deadline(class, Instant::now() + Duration::from_secs(3600)) {
                Some(permit) => return permit,
                None => continue,
            }
        }
    }

    /// [`reserve`](FrontDoor::reserve) with a bound: gives up and
    /// returns `None` once `timeout` has elapsed without capacity.
    pub fn reserve_timeout(&self, class: Priority, timeout: Duration) -> Option<Permit<'_>> {
        self.reserve_deadline(class, Instant::now() + timeout)
    }

    fn reserve_deadline(&self, class: Priority, deadline: Instant) -> Option<Permit<'_>> {
        let idx = class.class();
        let mut reserved = self.admission.lock().expect("admission lock poisoned");
        loop {
            if self.pool.queue_depth(class) + reserved[idx] < self.limits[idx] {
                reserved[idx] += 1;
                return Some(Permit {
                    door: self,
                    class,
                    armed: true,
                });
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            // Bounded wait: permit releases notify instantly, worker
            // dequeues are polled on the tick.
            let wait = RESERVE_TICK.min(deadline - now);
            reserved = self
                .freed
                .wait_timeout(reserved, wait)
                .expect("admission lock poisoned")
                .0;
        }
    }

    /// Spends `permit` to submit one request that **cannot** be shed at
    /// admission: the reservation already holds its queue slot, so the
    /// request enters the executor even if the class has meanwhile
    /// filled. The request rides in the permit's class (its priority
    /// option is overridden to match the reservation).
    ///
    /// The permit is consumed either way; on a validation error the
    /// reserved slot is released back to the class.
    ///
    /// # Errors
    ///
    /// The same validation failures as [`submit`](FrontDoor::submit) —
    /// never [`Error::Overloaded`].
    pub fn submit_reserved(
        &self,
        permit: Permit<'_>,
        ring: &Arc<dyn PolyRing>,
        request: impl Into<RingRequest>,
    ) -> Result<AsyncRequestHandle, Error> {
        let class = permit.class;
        let idx = class.class();
        let request: RingRequest = request.into().with_priority(class);
        let mut reserved = self.admission.lock().expect("admission lock poisoned");
        let queued = self.pool.queue_depth(class);
        let result = self
            .pool
            .submit_with_hook(ring, request, Some(self.publish_hook()));
        // The reservation converts into a queue entry (or, on a
        // validation error, evaporates): release it under the lock we
        // already hold, then disarm the permit so its Drop (which would
        // re-take the lock) does nothing.
        reserved[idx] -= 1;
        drop(reserved);
        self.freed.notify_all();
        permit.disarm();
        let handle = result?;
        // ORDERING: Relaxed statistics counters (see publish_hook).
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);
        self.counters.queue_high_water[idx].fetch_max(queued + 1, Ordering::Relaxed);
        Ok(AsyncRequestHandle::pending(handle))
    }

    /// A point-in-time [`AdmissionStats`] snapshot.
    pub fn stats(&self) -> AdmissionStats {
        // ORDERING: Relaxed reads of the statistics counters; the
        // snapshot is advisory and deliberately not atomic across
        // fields (see publish_hook).
        AdmissionStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            admitted: self.counters.admitted.load(Ordering::Relaxed),
            shed_at_submit: std::array::from_fn(|i| {
                self.counters.shed_at_submit[i].load(Ordering::Relaxed)
            }),
            shed_at_deadline: self.counters.shed_at_deadline.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            // ORDERING: Relaxed, as for every counter above.
            queue_high_water: std::array::from_fn(|i| {
                self.counters.queue_high_water[i].load(Ordering::Relaxed)
            }),
        }
    }
}

impl std::fmt::Debug for FrontDoor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontDoor")
            .field("workers", &self.workers())
            .field("limits", &self.limits)
            .field("stats", &self.stats())
            .finish()
    }
}

/// A reserved queue slot in one [`Priority`] class —
/// [`FrontDoor::reserve`]'s backpressure token. Spend it with
/// [`FrontDoor::submit_reserved`] for an unsheddable submit; dropping
/// it unspent releases the slot (and wakes blocked reservers).
#[must_use = "a permit holds a queue slot; spend it with submit_reserved or drop it"]
pub struct Permit<'a> {
    door: &'a FrontDoor,
    class: Priority,
    armed: bool,
}

impl Permit<'_> {
    /// The class this permit reserves a slot in.
    pub fn class(&self) -> Priority {
        self.class
    }

    /// Marks the reservation as already released so Drop does nothing.
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut reserved = self.door.admission.lock().expect("admission lock poisoned");
        reserved[self.class.class()] -= 1;
        drop(reserved);
        self.door.freed.notify_all();
    }
}

impl std::fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit")
            .field("class", &self.class)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::PolyOp;
    use crate::{PolymulRequest, Ring};
    use mqx_core::primes;

    const N: usize = 64;

    fn ring() -> Arc<dyn PolyRing> {
        Arc::new(Ring::auto(primes::Q124, N).unwrap())
    }

    fn request(seed: u64) -> PolymulRequest {
        let a: Vec<u128> = (0..N as u64).map(|i| u128::from(i * 3 + seed)).collect();
        let b: Vec<u128> = (0..N as u64)
            .map(|i| u128::from(i + 2 * seed + 1))
            .collect();
        PolymulRequest::new(PolyOp::Cyclic, a.into(), b.into())
    }

    #[test]
    fn block_on_drives_plain_futures() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
        assert_eq!(block_on(std::future::ready("done")), "done");
    }

    #[test]
    fn join_all_preserves_input_order() {
        let futures: Vec<_> = (0..5).map(std::future::ready).collect();
        assert_eq!(block_on(join_all(futures)), vec![0, 1, 2, 3, 4]);
        let empty: Vec<std::future::Ready<u8>> = Vec::new();
        assert_eq!(block_on(join_all(empty)), Vec::<u8>::new());
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let door = FrontDoor::new(1).unwrap();
        for class in Priority::ALL {
            assert_eq!(door.queue_depth_limit(class), DEFAULT_QUEUE_DEPTH);
        }
        let door = FrontDoor::builder(1)
            .queue_depth(8)
            .queue_depth_for(Priority::High, 32)
            .build()
            .unwrap();
        assert_eq!(door.queue_depth_limit(Priority::High), 32);
        assert_eq!(door.queue_depth_limit(Priority::Normal), 8);
        assert_eq!(door.queue_depth_limit(Priority::Low), 8);
        assert_eq!(door.workers(), 1);
        assert!(matches!(
            FrontDoor::builder(0).build().unwrap_err(),
            Error::NoWorkers
        ));
    }

    #[test]
    fn awaited_product_matches_blocking_wait() {
        let ring = ring();
        let door = FrontDoor::new(2).unwrap();
        let expected = door
            .executor()
            .submit(&ring, request(5))
            .unwrap()
            .wait()
            .unwrap();
        let future = door.submit(&ring, request(5)).unwrap();
        assert_eq!(block_on(future), Ok(expected.clone()));
        // The synchronous escape hatch consumes the same outcome.
        let handle = door.submit(&ring, request(5)).unwrap();
        assert_eq!(handle.wait(), Ok(expected));
        let stats = door.stats();
        assert!(stats.reconciles());
        assert_eq!(stats.submitted, 2, "direct executor submits not counted");
    }

    #[test]
    fn validation_errors_surface_and_are_uncounted() {
        let ring = ring();
        let door = FrontDoor::new(1).unwrap();
        let uneven = PolymulRequest::new(
            PolyOp::Cyclic,
            vec![0_u128; N - 1].into(),
            vec![0_u128; N].into(),
        );
        assert!(matches!(
            door.submit(&ring, uneven).unwrap_err(),
            Error::OperandLengthMismatch { .. }
        ));
        let stats = door.stats();
        assert_eq!(stats.submitted, 0);
        assert!(stats.reconciles());
    }

    #[test]
    fn depth_zero_class_sheds_everything_but_permits_never_materialize() {
        let ring = ring();
        let door = FrontDoor::builder(1)
            .queue_depth_for(Priority::Low, 0)
            .build()
            .unwrap();
        let shed = door
            .submit(&ring, request(1).with_priority(Priority::Low))
            .unwrap();
        assert!(shed.is_finished(), "resolved at admission");
        assert!(shed.canceller().is_none(), "nothing to cancel");
        assert!(matches!(
            block_on(shed),
            Err(Error::Overloaded {
                class: Priority::Low,
                depth: 0
            })
        ));
        assert!(door.try_reserve(Priority::Low).is_none());
        assert!(door
            .reserve_timeout(Priority::Low, Duration::from_millis(5))
            .is_none());
        // Other classes are unaffected.
        let ok = door.submit(&ring, request(2)).unwrap();
        assert!(block_on(ok).is_ok());
        let stats = door.stats();
        assert!(stats.reconciles());
        assert_eq!(stats.shed_at_submit_for(Priority::Low), 1);
        assert_eq!(stats.shed_at_submit_total(), 1);
    }

    #[test]
    fn dropped_permit_releases_its_slot() {
        let door = FrontDoor::builder(1)
            .queue_depth_for(Priority::Normal, 1)
            .build()
            .unwrap();
        let permit = door.try_reserve(Priority::Normal).unwrap();
        assert_eq!(permit.class(), Priority::Normal);
        assert!(door.try_reserve(Priority::Normal).is_none(), "slot held");
        drop(permit);
        let again = door.try_reserve(Priority::Normal);
        assert!(again.is_some(), "drop released the slot");
    }

    #[test]
    fn reserved_submit_rides_the_permit_class() {
        let ring = ring();
        let door = FrontDoor::builder(2)
            .queue_depth_for(Priority::High, 4)
            .build()
            .unwrap();
        let permit = door.reserve(Priority::High);
        // Submitted as Normal, but the permit pins it to High.
        let future = door.submit_reserved(permit, &ring, request(9)).unwrap();
        assert!(block_on(future).is_ok());
        let stats = door.stats();
        assert_eq!(stats.admitted, 1);
        assert!(stats.high_water_for(Priority::High) >= 1);
        assert!(stats.reconciles());
    }

    #[test]
    fn reserved_submit_validation_error_releases_the_slot() {
        let ring = ring();
        let door = FrontDoor::builder(1)
            .queue_depth_for(Priority::Normal, 1)
            .build()
            .unwrap();
        let permit = door.try_reserve(Priority::Normal).unwrap();
        let uneven = PolymulRequest::new(
            PolyOp::Cyclic,
            vec![0_u128; N - 1].into(),
            vec![0_u128; N].into(),
        );
        assert!(door.submit_reserved(permit, &ring, uneven).is_err());
        assert!(
            door.try_reserve(Priority::Normal).is_some(),
            "failed reserved submit still released the reservation"
        );
        assert!(door.stats().reconciles());
    }
}
