//! A lock-free pool of per-call scratch buffers — the substrate behind
//! the shared-`&self` ring API.
//!
//! [`Ring`](crate::Ring) used to own its scratch buffers directly, which
//! forced every hot-path method onto `&mut self` and made a ring
//! impossible to share across worker threads without cloning plans and
//! twiddle tables. [`ScratchPool`] moves those buffers behind a fixed
//! array of atomic slots: callers *check out* one `n`-residue buffer at
//! a time (a transform needs one, a polynomial product three), use it,
//! and the guard returns it on drop. Checkout and return probe slots
//! with plain loads and touch only a promising slot with one atomic
//! pointer swap/CAS — no mutex, no ABA hazard (whole boxes are
//! exchanged, never linked), and no allocation once the pool has
//! warmed up to the caller's concurrency level.
//!
//! With `W` concurrent polymul callers the pool converges on
//! `min(3·W, capacity)` live buffers; beyond that, overflow buffers are
//! simply freed on return, so a burst never permanently grows the pool.
//! The capacity is sized at construction: by default three buffers per
//! hardware thread ([`std::thread::available_parallelism`], clamped so
//! small containers still absorb oversubscribed pools and huge hosts
//! don't pin unbounded memory), or explicitly from a worker-count hint
//! (`RingBuilder::scratch_concurrency` /
//! `RnsRingBuilder::scratch_concurrency`) when the caller knows its
//! executor is wider than the machine.

use mqx_simd::ResidueSoa;
use std::ops::{Deref, DerefMut};
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

/// Smallest slot count a default-sized pool gets: three buffers for
/// each of ~10 workers even on a single-core container, where thread
/// pools routinely oversubscribe the one hardware thread.
const MIN_DEFAULT_SLOTS: usize = 32;

/// Hard ceiling on slots for any pool: bounds the full-pool probe cost
/// and the parked-buffer memory on very wide hosts (256 workers × 3
/// buffers each).
const MAX_SLOTS: usize = 768;

/// Buffers a polymul holds at once — the sizing unit for capacity.
const BUFFERS_PER_CALLER: usize = 3;

/// Default slot count: three buffers per hardware thread, clamped to
/// `[MIN_DEFAULT_SLOTS, MAX_SLOTS]`.
fn default_slots() -> usize {
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    (threads.saturating_mul(BUFFERS_PER_CALLER)).clamp(MIN_DEFAULT_SLOTS, MAX_SLOTS)
}

/// A lock-free checkout/return pool of `n`-residue scratch buffers for
/// one ring geometry.
#[derive(Debug)]
pub(crate) struct ScratchPool {
    n: usize,
    slots: Box<[AtomicPtr<ResidueSoa>]>,
}

impl ScratchPool {
    /// An empty pool for `n`-residue buffers, sized for this machine's
    /// hardware parallelism; buffers are allocated lazily on first
    /// checkout.
    pub fn new(n: usize) -> ScratchPool {
        ScratchPool::with_slots(n, default_slots())
    }

    /// An empty pool sized for `workers` concurrent polymul callers
    /// (three buffers each, capped at [`MAX_SLOTS`]). Use when the
    /// caller knows its executor width exceeds the hardware thread
    /// count the default sizing assumes.
    pub fn with_concurrency(n: usize, workers: usize) -> ScratchPool {
        let slots = workers
            .max(1)
            .saturating_mul(BUFFERS_PER_CALLER)
            .min(MAX_SLOTS);
        ScratchPool::with_slots(n, slots)
    }

    fn with_slots(n: usize, slots: usize) -> ScratchPool {
        ScratchPool {
            n,
            slots: (0..slots)
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect(),
        }
    }

    /// Number of buffers the pool can park (its slot count).
    #[cfg(test)]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Checks a buffer out of the pool, allocating a fresh one if every
    /// slot is empty or contended away. Contents are unspecified
    /// (pooled buffers carry whatever the previous caller left); every
    /// user overwrites before reading.
    pub fn checkout(&self) -> ScratchGuard<'_> {
        for slot in self.slots.iter() {
            // Read-mostly probe: only attempt the RMW on slots that
            // look occupied, so a miss scans with plain loads instead
            // of dirtying every slot's cache line with a swap (pools
            // can be hundreds of slots wide). A stale null read just
            // falls through to allocation — benign.
            // ORDERING: the Relaxed probe is advisory (stale reads only
            // mis-skip a slot); the Acquire swap below pairs with
            // `give_back`'s Release CAS so every write to the buffer
            // made before publication is visible to the new owner.
            if slot.load(Ordering::Relaxed).is_null() {
                continue;
            }
            let p = slot.swap(ptr::null_mut(), Ordering::Acquire);
            if !p.is_null() {
                return ScratchGuard {
                    pool: self,
                    // SAFETY: a non-null slot pointer was produced by
                    // `Box::into_raw` in `give_back` and ownership was
                    // transferred to the slot; the swap above took it
                    // back exclusively.
                    buf: Some(unsafe { Box::from_raw(p) }),
                };
            }
        }
        ScratchGuard {
            pool: self,
            buf: Some(Box::new(ResidueSoa::zeros(self.n))),
        }
    }

    /// Returns a buffer to the first empty slot, or frees it when the
    /// pool is full.
    fn give_back(&self, buf: Box<ResidueSoa>) {
        let p = Box::into_raw(buf);
        for slot in self.slots.iter() {
            // Same read-mostly probe as checkout: CAS only slots that
            // look empty, so returning into a full pool scans with
            // loads rather than failed RMWs.
            // ORDERING: Relaxed probe is advisory; the Release CAS
            // publishes the buffer (pairs with checkout's Acquire
            // swap), and its Relaxed failure ordering is fine — a lost
            // race reads nothing through the pointer.
            if !slot.load(Ordering::Relaxed).is_null() {
                continue;
            }
            if slot
                .compare_exchange(ptr::null_mut(), p, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
        // Pool full: drop the overflow buffer.
        // SAFETY: `p` came from `Box::into_raw` above and was not
        // installed in any slot, so ownership is still ours.
        drop(unsafe { Box::from_raw(p) });
    }

    /// Number of buffers currently parked in the pool (racy snapshot;
    /// for tests and diagnostics).
    #[cfg(test)]
    pub fn pooled(&self) -> usize {
        // ORDERING: racy diagnostic snapshot; Relaxed loads because no
        // decision here requires synchronizing with buffer contents.
        self.slots
            .iter()
            .filter(|s| !s.load(Ordering::Relaxed).is_null())
            .count()
    }
}

impl Drop for ScratchPool {
    fn drop(&mut self) {
        for slot in self.slots.iter_mut() {
            let p = *slot.get_mut();
            if !p.is_null() {
                // SAFETY: `&mut self` guarantees no concurrent checkout;
                // the pointer owns its box (see `give_back`).
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

/// An exclusively-owned scratch buffer, returned to its pool on drop.
pub(crate) struct ScratchGuard<'p> {
    pool: &'p ScratchPool,
    buf: Option<Box<ResidueSoa>>,
}

impl Deref for ScratchGuard<'_> {
    type Target = ResidueSoa;

    fn deref(&self) -> &ResidueSoa {
        self.buf.as_ref().expect("buffer present until drop")
    }
}

impl DerefMut for ScratchGuard<'_> {
    fn deref_mut(&mut self) -> &mut ResidueSoa {
        self.buf.as_mut().expect("buffer present until drop")
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.give_back(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_return_reuses_the_same_allocation() {
        let pool = ScratchPool::new(32);
        assert_eq!(pool.pooled(), 0, "lazy: nothing allocated up front");
        let first_ptr = {
            let guard = pool.checkout();
            &*guard as *const ResidueSoa
        };
        assert_eq!(pool.pooled(), 1);
        let guard = pool.checkout();
        assert_eq!(&*guard as *const ResidueSoa, first_ptr, "buffer was pooled");
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_buffers() {
        let pool = ScratchPool::new(16);
        let mut g1 = pool.checkout();
        let mut g2 = pool.checkout();
        let mut g3 = pool.checkout();
        g1.set(0, 7);
        g2.set(0, 9);
        g3.set(0, 11);
        assert_eq!(g1.get(0), 7);
        assert_eq!(g2.get(0), 9);
        assert_eq!(g3.get(0), 11);
        drop(g1);
        drop(g2);
        drop(g3);
        assert_eq!(pool.pooled(), 3);
    }

    #[test]
    fn overflow_beyond_capacity_is_freed_not_leaked() {
        let pool = ScratchPool::new(8);
        let capacity = pool.capacity();
        let guards: Vec<_> = (0..capacity + 4).map(|_| pool.checkout()).collect();
        drop(guards);
        // Only `capacity` buffers fit; the rest were freed on return.
        assert_eq!(pool.pooled(), capacity);
    }

    #[test]
    fn default_capacity_tracks_hardware_parallelism() {
        let pool = ScratchPool::new(8);
        let threads = std::thread::available_parallelism().map_or(1, usize::from);
        let expected = (threads * BUFFERS_PER_CALLER).clamp(MIN_DEFAULT_SLOTS, MAX_SLOTS);
        assert_eq!(pool.capacity(), expected);
    }

    #[test]
    fn concurrency_hint_sizes_three_buffers_per_worker() {
        assert_eq!(ScratchPool::with_concurrency(8, 40).capacity(), 120);
        // Zero-worker hints still yield a usable pool.
        assert_eq!(ScratchPool::with_concurrency(8, 0).capacity(), 3);
        // The ceiling bounds absurd hints.
        assert_eq!(
            ScratchPool::with_concurrency(8, usize::MAX).capacity(),
            MAX_SLOTS
        );
    }

    #[test]
    fn buffers_have_the_pool_geometry() {
        let pool = ScratchPool::new(64);
        let guard = pool.checkout();
        assert_eq!(guard.len(), 64);
    }

    #[test]
    fn pool_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScratchPool>();
    }

    #[test]
    fn hammered_from_threads_stays_consistent() {
        let pool = ScratchPool::new(16);
        std::thread::scope(|scope| {
            for t in 0..8_u64 {
                let pool = &pool;
                scope.spawn(move || {
                    for i in 0..200 {
                        // The polymul shape: three buffers held at once.
                        let mut a = pool.checkout();
                        let mut b = pool.checkout();
                        let mut tmp = pool.checkout();
                        let v = u128::from(t * 1000 + i);
                        a.set(0, v);
                        b.set(0, v + 1);
                        tmp.set(0, v + 2);
                        // Exclusive ownership: nobody else wrote ours.
                        assert_eq!(a.get(0), v);
                        assert_eq!(b.get(0), v + 1);
                        assert_eq!(tmp.get(0), v + 2);
                    }
                });
            }
        });
        assert!(pool.pooled() <= 24, "at most three buffers per worker");
    }

    #[test]
    fn high_worker_hammer_converges_without_steady_state_churn() {
        // The old fixed 32-slot pool degraded to malloc/free churn past
        // ~10 workers (3 buffers per in-flight polymul); a hinted pool
        // must absorb the full working set.
        const WORKERS: usize = 24;
        let pool = ScratchPool::with_concurrency(16, WORKERS);
        assert!(pool.capacity() >= WORKERS * BUFFERS_PER_CALLER);
        std::thread::scope(|scope| {
            for t in 0..WORKERS as u64 {
                let pool = &pool;
                scope.spawn(move || {
                    for i in 0..50 {
                        let mut a = pool.checkout();
                        let mut b = pool.checkout();
                        let mut tmp = pool.checkout();
                        let v = u128::from(t * 1000 + i);
                        a.set(0, v);
                        b.set(0, v + 1);
                        tmp.set(0, v + 2);
                        assert_eq!(a.get(0), v);
                        assert_eq!(b.get(0), v + 1);
                        assert_eq!(tmp.get(0), v + 2);
                    }
                });
            }
        });
        // Warm pool: at most the working set is parked, and a full-width
        // burst round-trips with zero overflow frees afterwards.
        assert!(pool.pooled() <= WORKERS * BUFFERS_PER_CALLER);
        let guards: Vec<_> = (0..WORKERS * BUFFERS_PER_CALLER)
            .map(|_| pool.checkout())
            .collect();
        drop(guards);
        assert_eq!(
            pool.pooled(),
            WORKERS * BUFFERS_PER_CALLER,
            "the hinted pool parks the whole 3·W working set"
        );
    }
}
