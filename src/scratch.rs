//! A lock-free pool of per-call scratch buffers — the substrate behind
//! the shared-`&self` ring API.
//!
//! [`Ring`](crate::Ring) used to own its scratch buffers directly, which
//! forced every hot-path method onto `&mut self` and made a ring
//! impossible to share across worker threads without cloning plans and
//! twiddle tables. [`ScratchPool`] moves those buffers behind a fixed
//! array of atomic slots: callers *check out* one `n`-residue buffer at
//! a time (a transform needs one, a polynomial product three), use it,
//! and the guard returns it on drop. Checkout and return are single
//! atomic pointer swaps per slot probed — no mutex, no ABA hazard
//! (whole boxes are exchanged, never linked), and no allocation once
//! the pool has warmed up to the caller's concurrency level.
//!
//! With `W` concurrent polymul callers the pool converges on
//! `min(3·W, SLOTS)` live buffers; beyond that, overflow buffers are
//! simply freed on return, so a burst never permanently grows the pool.

use mqx_simd::ResidueSoa;
use std::ops::{Deref, DerefMut};
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

/// Number of atomic slots per pool: three buffers for every worker of a
/// sizeable thread-pool without contention, small enough that a
/// full-pool probe is a handful of loads.
const SLOTS: usize = 32;

/// A lock-free checkout/return pool of `n`-residue scratch buffers for
/// one ring geometry.
#[derive(Debug)]
pub(crate) struct ScratchPool {
    n: usize,
    slots: [AtomicPtr<ResidueSoa>; SLOTS],
}

impl ScratchPool {
    /// An empty pool for `n`-residue buffers; buffers are allocated
    /// lazily on first checkout.
    pub fn new(n: usize) -> ScratchPool {
        ScratchPool {
            n,
            slots: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
        }
    }

    /// Checks a buffer out of the pool, allocating a fresh one if every
    /// slot is empty or contended away. Contents are unspecified
    /// (pooled buffers carry whatever the previous caller left); every
    /// user overwrites before reading.
    pub fn checkout(&self) -> ScratchGuard<'_> {
        for slot in &self.slots {
            let p = slot.swap(ptr::null_mut(), Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: a non-null slot pointer was produced by
                // `Box::into_raw` in `give_back` and ownership was
                // transferred to the slot; the swap above took it back
                // exclusively.
                return ScratchGuard {
                    pool: self,
                    buf: Some(unsafe { Box::from_raw(p) }),
                };
            }
        }
        ScratchGuard {
            pool: self,
            buf: Some(Box::new(ResidueSoa::zeros(self.n))),
        }
    }

    /// Returns a buffer to the first empty slot, or frees it when the
    /// pool is full.
    fn give_back(&self, buf: Box<ResidueSoa>) {
        let p = Box::into_raw(buf);
        for slot in &self.slots {
            if slot
                .compare_exchange(ptr::null_mut(), p, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
        // Pool full: drop the overflow buffer.
        // SAFETY: `p` came from `Box::into_raw` above and was not
        // installed in any slot, so ownership is still ours.
        drop(unsafe { Box::from_raw(p) });
    }

    /// Number of buffers currently parked in the pool (racy snapshot;
    /// for tests and diagnostics).
    #[cfg(test)]
    pub fn pooled(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !s.load(Ordering::Relaxed).is_null())
            .count()
    }
}

impl Drop for ScratchPool {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            let p = *slot.get_mut();
            if !p.is_null() {
                // SAFETY: `&mut self` guarantees no concurrent checkout;
                // the pointer owns its box (see `give_back`).
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

/// An exclusively-owned scratch buffer, returned to its pool on drop.
pub(crate) struct ScratchGuard<'p> {
    pool: &'p ScratchPool,
    buf: Option<Box<ResidueSoa>>,
}

impl Deref for ScratchGuard<'_> {
    type Target = ResidueSoa;

    fn deref(&self) -> &ResidueSoa {
        self.buf.as_ref().expect("buffer present until drop")
    }
}

impl DerefMut for ScratchGuard<'_> {
    fn deref_mut(&mut self) -> &mut ResidueSoa {
        self.buf.as_mut().expect("buffer present until drop")
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.give_back(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_return_reuses_the_same_allocation() {
        let pool = ScratchPool::new(32);
        assert_eq!(pool.pooled(), 0, "lazy: nothing allocated up front");
        let first_ptr = {
            let guard = pool.checkout();
            &*guard as *const ResidueSoa
        };
        assert_eq!(pool.pooled(), 1);
        let guard = pool.checkout();
        assert_eq!(&*guard as *const ResidueSoa, first_ptr, "buffer was pooled");
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_buffers() {
        let pool = ScratchPool::new(16);
        let mut g1 = pool.checkout();
        let mut g2 = pool.checkout();
        let mut g3 = pool.checkout();
        g1.set(0, 7);
        g2.set(0, 9);
        g3.set(0, 11);
        assert_eq!(g1.get(0), 7);
        assert_eq!(g2.get(0), 9);
        assert_eq!(g3.get(0), 11);
        drop(g1);
        drop(g2);
        drop(g3);
        assert_eq!(pool.pooled(), 3);
    }

    #[test]
    fn overflow_beyond_slots_is_freed_not_leaked() {
        let pool = ScratchPool::new(8);
        let guards: Vec<_> = (0..SLOTS + 4).map(|_| pool.checkout()).collect();
        drop(guards);
        // Only SLOTS buffers fit; the rest were freed on return.
        assert_eq!(pool.pooled(), SLOTS);
    }

    #[test]
    fn buffers_have_the_pool_geometry() {
        let pool = ScratchPool::new(64);
        let guard = pool.checkout();
        assert_eq!(guard.len(), 64);
    }

    #[test]
    fn pool_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScratchPool>();
    }

    #[test]
    fn hammered_from_threads_stays_consistent() {
        let pool = ScratchPool::new(16);
        std::thread::scope(|scope| {
            for t in 0..8_u64 {
                let pool = &pool;
                scope.spawn(move || {
                    for i in 0..200 {
                        // The polymul shape: three buffers held at once.
                        let mut a = pool.checkout();
                        let mut b = pool.checkout();
                        let mut tmp = pool.checkout();
                        let v = u128::from(t * 1000 + i);
                        a.set(0, v);
                        b.set(0, v + 1);
                        tmp.set(0, v + 2);
                        // Exclusive ownership: nobody else wrote ours.
                        assert_eq!(a.get(0), v);
                        assert_eq!(b.get(0), v + 1);
                        assert_eq!(tmp.get(0), v + 2);
                    }
                });
            }
        });
        assert!(pool.pooled() <= 24, "at most three buffers per worker");
    }
}
