//! Runtime-dispatched engine backends: one object-safe interface over
//! every vector tier the *running machine* actually has.
//!
//! The engine crates (`mqx_simd`, `mqx_ntt`, `mqx_blas`) are generic
//! over [`SimdEngine`] at compile time; before this layer existed every
//! caller had to name concrete engine types behind `cfg(target_feature)`
//! gates, so a binary built without `-C target-cpu=native` silently lost
//! all vector tiers. [`Backend`] erases the engine type parameter behind
//! a trait object, and the registry ([`available`], [`by_name`],
//! [`default_backend`]) discovers tiers with
//! `std::arch::is_x86_feature_detected!` at **runtime** — the same binary
//! picks AVX-512 on a server and falls back to the portable engine in a
//! container, with no rebuild.
//!
//! The registry is built **once per process** (an [`OnceLock`]-backed
//! memo): every [`available`] / [`by_name`] / [`names`] call borrows
//! the same [`Arc`]s, so backend identity is stable —
//! `Arc::ptr_eq(&by_name("portable")?, &by_name("portable")?)` holds —
//! and ring builds never re-run feature detection or re-allocate the
//! registry.
//!
//! **Which backend does auto selection pick?** Not a static guess: the
//! first auto-built ring triggers a one-shot [`calibrate`] pass that
//! *measures* a short forward-NTT + `vmul` burst on every consumable
//! backend and ranks the tiers by observed ns/butterfly (see
//! [`calibration`]). `MQX_BACKEND=<name>` pins a registry backend for
//! every auto selection, and `MQX_CALIBRATE=off` falls back to the
//! static detected+compiled rule ([`default_backend`]).
//!
//! Most code should go through [`Ring`](crate::Ring), which pairs a
//! backend with an [`NttPlan`] and reusable scratch buffers; the raw
//! registry is for tooling that needs to enumerate or pin tiers (the
//! cross-tier agreement tests, the benchmark tier runner).
//!
//! ```
//! use mqx::backend;
//!
//! // Every host has at least the portable tier.
//! let tiers = backend::available();
//! assert!(tiers.iter().any(|b| b.name() == "portable"));
//! // The PISA projection backend is never consumable (§4.2).
//! let pisa = backend::by_name("mqx-pisa").unwrap();
//! assert!(!pisa.consumable());
//! // Auto selection ranks tiers by measured cost (memoized).
//! let cal = backend::calibration();
//! assert!(cal.winner().consumable());
//! ```

pub mod calibrate;

use crate::error::Error;
use mqx_core::Modulus;
use mqx_ntt::NttPlan;
use mqx_simd::{profiles, proxy, Mqx, Portable, ResidueSoa, SimdEngine};
use std::fmt;
use std::marker::PhantomData;
use std::sync::{Arc, OnceLock};

#[cfg(target_arch = "x86_64")]
use mqx_simd::{Avx2, Avx512};

/// The vector tier a backend belongs to (the paper's x-axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Tier {
    /// The always-available portable (scalar-emulation) engine.
    Portable,
    /// AVX2: four 64-bit lanes, emulated masks.
    Avx2,
    /// AVX-512: eight 64-bit lanes, real mask registers.
    Avx512,
    /// The proposed MQX ISA extension (functional or PISA mode).
    Mqx,
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tier::Portable => "portable",
            Tier::Avx2 => "avx2",
            Tier::Avx512 => "avx512",
            Tier::Mqx => "mqx",
        })
    }
}

/// An object-safe engine: the full kernel surface of one vector tier,
/// with the engine type parameter erased.
///
/// All operations follow the conventions of the generic kernels they
/// wrap: data travels in structure-of-arrays form ([`ResidueSoa`]),
/// inputs must be reduced below the modulus, and NTT buffers must match
/// the plan size (the wrapped kernels panic otherwise — [`Ring`]
/// validates lengths before calling in).
///
/// [`Ring`]: crate::Ring
pub trait Backend: Send + Sync {
    /// Stable registry name (`"portable"`, `"avx2"`, `"avx512"`,
    /// `"mqx-functional"`, `"mqx-pisa"`, …).
    fn name(&self) -> &'static str;

    /// The tier this backend measures.
    fn tier(&self) -> Tier;

    /// Number of 64-bit lanes per vector operation.
    fn lanes(&self) -> usize;

    /// Whether numerical results may be consumed as values. `false` for
    /// PISA-mode backends, whose instruction streams have representative
    /// *cost* but deliberately wrong *numbers* (§4.2); their outputs must
    /// only ever feed timers.
    fn consumable(&self) -> bool {
        true
    }

    /// Forward NTT over `x` (natural order in and out); `scratch` must
    /// have the plan's length.
    fn forward_ntt(&self, plan: &NttPlan, x: &mut ResidueSoa, scratch: &mut ResidueSoa);

    /// Inverse NTT over `x`, including the `n⁻¹` scale.
    fn inverse_ntt(&self, plan: &NttPlan, x: &mut ResidueSoa, scratch: &mut ResidueSoa);

    /// Element-wise modular addition: `out[i] = x[i] + y[i] mod q`.
    fn vadd(&self, x: &ResidueSoa, y: &ResidueSoa, out: &mut ResidueSoa, m: &Modulus);

    /// Element-wise modular subtraction.
    fn vsub(&self, x: &ResidueSoa, y: &ResidueSoa, out: &mut ResidueSoa, m: &Modulus);

    /// Element-wise modular multiplication.
    fn vmul(&self, x: &ResidueSoa, y: &ResidueSoa, out: &mut ResidueSoa, m: &Modulus);

    /// `y[i] ← a·x[i] + y[i] mod q` with broadcast scalar `a`.
    fn axpy(&self, a: u128, x: &ResidueSoa, y: &mut ResidueSoa, m: &Modulus);

    /// Cyclic polynomial product via the convolution theorem, entirely in
    /// this backend's tier: forward-transform both operands in place,
    /// multiply point-wise, inverse-transform. The product is left in
    /// `a`; `b` is consumed as a transform buffer and `scratch` must have
    /// the plan's length.
    fn polymul_cyclic(
        &self,
        plan: &NttPlan,
        a: &mut ResidueSoa,
        b: &mut ResidueSoa,
        scratch: &mut ResidueSoa,
    ) {
        self.forward_ntt(plan, a, scratch);
        self.forward_ntt(plan, b, scratch);
        self.vmul(a, b, scratch, plan.modulus());
        std::mem::swap(a, scratch);
        self.inverse_ntt(plan, a, scratch);
    }

    /// Cyclic polynomial product through the *fused lazy pipeline*:
    /// forward(a), forward(b), point-wise multiply and inverse run
    /// back-to-back in the `[0, 2q)` Shoup-butterfly domain, with the
    /// canonical reduction and `n⁻¹` scale merged into the final pass.
    /// Same contract as [`Backend::polymul_cyclic`] (result in `a`, `b`
    /// clobbered, no allocation) and bit-identical to it.
    ///
    /// The default implementation falls back to the canonical path, so
    /// every backend is correct by construction; the engine-backed
    /// registry tiers all override it with the lazy kernels.
    fn polymul_cyclic_fused(
        &self,
        plan: &NttPlan,
        a: &mut ResidueSoa,
        b: &mut ResidueSoa,
        scratch: &mut ResidueSoa,
    ) {
        // The default delegates to the canonical path, whose add/sub
        // folds assume canonical inputs — hence the tighter `q` bound
        // (engine overrides accept the full [0, 2q) lazy domain).
        let q = plan.modulus().value();
        mqx_ntt::debug_assert_domain_soa(a, q, "polymul_cyclic_fused (default) input a");
        mqx_ntt::debug_assert_domain_soa(b, q, "polymul_cyclic_fused (default) input b");
        self.polymul_cyclic(plan, a, b, scratch);
    }

    /// Negacyclic polynomial product through the fused lazy pipeline:
    /// ψ twist, fused cyclic body, merged `ψ^{−i}·n⁻¹` untwist. Result in
    /// `a`, `b` clobbered, no allocation; bit-identical to the canonical
    /// twist/cyclic/untwist sequence.
    ///
    /// # Errors
    ///
    /// Returns [`mqx_ntt::NttError::NoRoot`] when the plan's field has no
    /// 2n-th root of unity.
    fn polymul_negacyclic_fused(
        &self,
        plan: &NttPlan,
        a: &mut ResidueSoa,
        b: &mut ResidueSoa,
        scratch: &mut ResidueSoa,
    ) -> Result<(), mqx_ntt::NttError> {
        // Canonical-only, as for the cyclic default above.
        let q = plan.modulus().value();
        mqx_ntt::debug_assert_domain_soa(a, q, "polymul_negacyclic_fused (default) input a");
        mqx_ntt::debug_assert_domain_soa(b, q, "polymul_negacyclic_fused (default) input b");
        let (psi, psi_inv) = match (plan.psi_soa(), plan.psi_inv_soa()) {
            (Some(p), Some(pi)) => (p, pi),
            _ => {
                return Err(mqx_ntt::NttError::NoRoot(mqx_core::RootError::NoSuchRoot {
                    order: 2 * plan.size() as u64,
                }))
            }
        };
        let m = plan.modulus();
        self.vmul(a, psi, scratch, m);
        std::mem::swap(a, scratch);
        self.vmul(b, psi, scratch, m);
        std::mem::swap(b, scratch);
        self.polymul_cyclic(plan, a, b, scratch);
        self.vmul(a, psi_inv, scratch, m);
        std::mem::swap(a, scratch);
        Ok(())
    }
}

impl fmt::Debug for dyn Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Backend")
            .field("name", &self.name())
            .field("tier", &self.tier())
            .field("lanes", &self.lanes())
            .field("consumable", &self.consumable())
            .finish()
    }
}

impl dyn Backend {
    /// Convenience alias for the free function [`available`], so call
    /// sites can write `<dyn Backend>::available()`.
    pub fn available() -> Vec<Arc<dyn Backend>> {
        available()
    }
}

/// The adapter that erases a concrete [`SimdEngine`] behind [`Backend`].
struct EngineBackend<E: SimdEngine> {
    name: &'static str,
    tier: Tier,
    consumable: bool,
    _engine: PhantomData<fn() -> E>,
}

impl<E: SimdEngine> Backend for EngineBackend<E> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn tier(&self) -> Tier {
        self.tier
    }

    fn lanes(&self) -> usize {
        E::LANES
    }

    fn consumable(&self) -> bool {
        self.consumable
    }

    fn forward_ntt(&self, plan: &NttPlan, x: &mut ResidueSoa, scratch: &mut ResidueSoa) {
        plan.forward_simd::<E>(x, scratch);
    }

    fn inverse_ntt(&self, plan: &NttPlan, x: &mut ResidueSoa, scratch: &mut ResidueSoa) {
        plan.inverse_simd::<E>(x, scratch);
    }

    fn vadd(&self, x: &ResidueSoa, y: &ResidueSoa, out: &mut ResidueSoa, m: &Modulus) {
        mqx_blas::simd::vadd::<E>(x, y, out, m);
    }

    fn vsub(&self, x: &ResidueSoa, y: &ResidueSoa, out: &mut ResidueSoa, m: &Modulus) {
        mqx_blas::simd::vsub::<E>(x, y, out, m);
    }

    fn vmul(&self, x: &ResidueSoa, y: &ResidueSoa, out: &mut ResidueSoa, m: &Modulus) {
        mqx_blas::simd::vmul::<E>(x, y, out, m);
    }

    fn axpy(&self, a: u128, x: &ResidueSoa, y: &mut ResidueSoa, m: &Modulus) {
        mqx_blas::simd::axpy::<E>(a, x, y, m);
    }

    fn polymul_cyclic_fused(
        &self,
        plan: &NttPlan,
        a: &mut ResidueSoa,
        b: &mut ResidueSoa,
        scratch: &mut ResidueSoa,
    ) {
        // The lazy pipeline accepts the full [0, 2q) Shoup domain, not
        // just canonical inputs (rule L3; see NttPlan::polymul_fused_*).
        let q = plan.modulus().value();
        mqx_ntt::debug_assert_domain_soa(a, 2 * q, "polymul_cyclic_fused input a");
        mqx_ntt::debug_assert_domain_soa(b, 2 * q, "polymul_cyclic_fused input b");
        plan.polymul_fused_cyclic_simd::<E>(a, b, scratch);
    }

    fn polymul_negacyclic_fused(
        &self,
        plan: &NttPlan,
        a: &mut ResidueSoa,
        b: &mut ResidueSoa,
        scratch: &mut ResidueSoa,
    ) -> Result<(), mqx_ntt::NttError> {
        // Same [0, 2q) lazy domain as the cyclic override above.
        let q = plan.modulus().value();
        mqx_ntt::debug_assert_domain_soa(a, 2 * q, "polymul_negacyclic_fused input a");
        mqx_ntt::debug_assert_domain_soa(b, 2 * q, "polymul_negacyclic_fused input b");
        plan.polymul_fused_negacyclic_simd::<E>(a, b, scratch)
    }
}

fn make<E: SimdEngine>(name: &'static str, tier: Tier, consumable: bool) -> Arc<dyn Backend> {
    Arc::new(EngineBackend::<E> {
        name,
        tier,
        consumable,
        _engine: PhantomData,
    })
}

/// The process-wide registry, built exactly once: feature detection
/// and the `Arc` allocations happen on the first call, and every later
/// lookup borrows the memoized entries (stable `Arc::ptr_eq` identity).
pub(crate) fn registry() -> &'static [Arc<dyn Backend>] {
    static REGISTRY: OnceLock<Vec<Arc<dyn Backend>>> = OnceLock::new();
    REGISTRY.get_or_init(build_registry)
}

/// Every backend the running machine can execute, fastest hardware tier
/// first: AVX-512 and AVX2 (when `is_x86_feature_detected!` confirms
/// them), the always-available portable engine, then the MQX engines
/// over the best detected base — `"mqx-functional"` (bit-exact Table 2
/// emulation, slow) and `"mqx-pisa"` (representative cost, non-consumable
/// numbers).
///
/// The registry itself is memoized: this clones handles to the same
/// process-wide instances every time (so `Arc::ptr_eq` identity is
/// stable across calls), it never re-runs detection.
pub fn available() -> Vec<Arc<dyn Backend>> {
    registry().to_vec()
}

/// Builds the registry contents; runs once, behind [`registry`].
fn build_registry() -> Vec<Arc<dyn Backend>> {
    let mut out: Vec<Arc<dyn Backend>> = Vec::new();

    #[cfg(target_arch = "x86_64")]
    {
        if mqx_simd::avx512_detected() {
            out.push(make::<Avx512>("avx512", Tier::Avx512, true));
        }
        if mqx_simd::avx2_detected() {
            out.push(make::<Avx2>("avx2", Tier::Avx2, true));
        }
    }
    out.push(make::<Portable>("portable", Tier::Portable, true));

    #[cfg(target_arch = "x86_64")]
    if mqx_simd::avx512_detected() {
        out.push(make::<Mqx<Avx512, profiles::McFunctional>>(
            "mqx-functional",
            Tier::Mqx,
            true,
        ));
        out.push(make::<Mqx<Avx512, profiles::McPisa>>(
            "mqx-pisa",
            Tier::Mqx,
            false,
        ));
        return out;
    }

    out.push(make::<Mqx<Portable, profiles::McFunctional>>(
        "mqx-functional",
        Tier::Mqx,
        true,
    ));
    out.push(make::<Mqx<Portable, profiles::McPisa>>(
        "mqx-pisa",
        Tier::Mqx,
        false,
    ));
    out
}

/// The names [`available`] currently offers, in the same order.
/// Borrows the memoized registry — no registry rebuild per call.
pub fn names() -> Vec<&'static str> {
    registry().iter().map(|b| b.name()).collect()
}

/// Looks a backend up by its registry name. Returns a handle to the
/// memoized process-wide instance (stable `Arc::ptr_eq` identity).
pub fn by_name(name: &str) -> Option<Arc<dyn Backend>> {
    registry().iter().find(|b| b.name() == name).cloned()
}

/// The **static rule**: the fastest hardware tier that is both
/// *detected* on this CPU and *compiled with its target features
/// enabled* (AVX-512 → AVX2 → portable). MQX backends are never
/// auto-selected: functional mode is a slow bit-exact emulation and
/// PISA mode is non-consumable.
///
/// This is no longer what [`Ring::auto`](crate::Ring::auto) uses by
/// default — auto selection goes through the measured
/// [`calibration`] ranking (see [`selected_backend`]) and only falls
/// back to this rule when `MQX_CALIBRATE=off` disables the startup
/// measurement. The rule remains useful as the measurement-free
/// prediction the calibration is validated against.
///
/// The compiled-axis condition matters: in a build without
/// `-C target-cpu=native` the AVX engines still *run* (their
/// `#[target_feature]` intrinsics execute correctly), but none of the
/// calls inline, and the measured cost is several times *worse* than
/// the fully-optimized portable engine — so this rule falls back to
/// portable there. Pinning an AVX backend explicitly (by name or
/// instance) remains available for measurement and agreement testing.
pub fn default_backend() -> Arc<dyn Backend> {
    registry()
        .iter()
        .find(|b| {
            b.consumable()
                && match b.tier() {
                    Tier::Avx512 => mqx_simd::avx512_compiled(),
                    Tier::Avx2 => mqx_simd::avx2_compiled(),
                    Tier::Portable => true,
                    Tier::Mqx => false,
                }
        })
        .cloned()
        .expect("the portable backend is always available")
}

/// The memoized once-per-process calibration: per-backend measured
/// ns/butterfly, the ranked consumable tiers, and the rule that
/// produced the ranking ([`calibrate::Rule::Measured`] by default,
/// [`calibrate::Rule::Static`] when `MQX_CALIBRATE=off`). The first
/// call pays the measurement burst (a few tens of milliseconds); every
/// later call returns the same object.
pub fn calibration() -> &'static calibrate::Calibration {
    calibrate::process_calibration()
}

/// The backend auto selection resolves to for this process:
/// the `MQX_BACKEND` pin when set (unknown names are rejected with
/// [`Error::UnknownBackend`]), otherwise the [`calibration`] winner —
/// the consumable non-MQX backend with the best measured ns/butterfly,
/// or the static-rule winner under `MQX_CALIBRATE=off`.
pub fn selected_backend() -> Result<Arc<dyn Backend>, Error> {
    calibrate::select(calibrate::env_pin().as_deref())
}

/// Per-channel auto selection for `k` residue channels: the pin (when
/// set) applies to every channel; otherwise channels round-robin over
/// the calibration's competitive set, so near-tied tiers may share the
/// channel work (see [`calibrate::Calibration::channel_backends`]).
pub(crate) fn selected_channel_backends(k: usize) -> Result<Vec<Arc<dyn Backend>>, Error> {
    calibrate::select_channels(calibrate::env_pin().as_deref(), k)
}

/// One Figure 6 ablation variant: a label matching the paper's x-axis
/// and the backend that measures it.
pub struct AblationVariant {
    /// The paper's variant label (`"Base"`, `"+M"`, `"+C"`, …).
    pub label: &'static str,
    /// The measuring backend (PISA mode for every MQX variant).
    pub backend: Arc<dyn Backend>,
}

/// The Figure 6 sensitivity set over the best detected base engine:
/// `Base` (the unmodified engine) plus the five MQX component
/// combinations, all in PISA mode exactly as the paper measures them.
///
/// `Base` and the `+M,C` (`"mqx-pisa"`) entries are the memoized
/// registry instances — `Arc::ptr_eq` identity with [`by_name`] holds,
/// so per-backend caches (e.g. calibration scores) see the same
/// object. The remaining profile combinations are not registry
/// members and are minted per call.
pub fn ablation_variants() -> Vec<AblationVariant> {
    fn over<E: SimdEngine>(base: Arc<dyn Backend>, pisa: Arc<dyn Backend>) -> Vec<AblationVariant> {
        vec![
            AblationVariant {
                label: "Base",
                backend: base,
            },
            AblationVariant {
                label: "+M",
                backend: make::<Mqx<E, profiles::MPisa>>("mqx+M-pisa", Tier::Mqx, false),
            },
            AblationVariant {
                label: "+C",
                backend: make::<Mqx<E, profiles::CPisa>>("mqx+C-pisa", Tier::Mqx, false),
            },
            AblationVariant {
                label: "+M,C",
                backend: pisa,
            },
            AblationVariant {
                label: "+Mh,C",
                backend: make::<Mqx<E, profiles::MhCPisa>>("mqx+MhC-pisa", Tier::Mqx, false),
            },
            AblationVariant {
                label: "+M,C,P",
                backend: make::<Mqx<E, profiles::McpPisa>>("mqx+MCP-pisa", Tier::Mqx, false),
            },
        ]
    }

    // The registry's "mqx-pisa" sits over the same base engine this
    // function selects (AVX-512 when detected, portable otherwise).
    let pisa = by_name("mqx-pisa").expect("mqx-pisa is always registered");

    #[cfg(target_arch = "x86_64")]
    if mqx_simd::avx512_detected() {
        let base = by_name("avx512").expect("detected ⇒ registered");
        return over::<Avx512>(base, pisa);
    }
    let base = by_name("portable").expect("portable is always registered");
    over::<Portable>(base, pisa)
}

/// One functional-mode MQX profile: the Figure 6 component label and a
/// bit-exact (consumable) backend running that profile's Table 2
/// emulation.
pub struct FunctionalProfile {
    /// The component-combination label (`"+M"`, `"+C"`, …).
    pub label: &'static str,
    /// The bit-exact backend for that profile.
    pub backend: Arc<dyn Backend>,
}

/// Every MQX component combination in **functional** (bit-exact) mode,
/// over the portable engine — the §4.2 correctness side of the Figure 6
/// ablation. These all carry `consumable() == true` and must agree with
/// the scalar reference bit for bit on every kernel; the test suites
/// enforce that at the NTT level.
pub fn functional_profile_backends() -> Vec<FunctionalProfile> {
    vec![
        FunctionalProfile {
            label: "+M",
            backend: make::<Mqx<Portable, profiles::MFunctional>>("mqx+M-func", Tier::Mqx, true),
        },
        FunctionalProfile {
            label: "+C",
            backend: make::<Mqx<Portable, profiles::CFunctional>>("mqx+C-func", Tier::Mqx, true),
        },
        FunctionalProfile {
            label: "+M,C",
            backend: make::<Mqx<Portable, profiles::McFunctional>>("mqx+MC-func", Tier::Mqx, true),
        },
        FunctionalProfile {
            label: "+Mh,C",
            backend: make::<Mqx<Portable, profiles::MhCFunctional>>(
                "mqx+MhC-func",
                Tier::Mqx,
                true,
            ),
        },
        FunctionalProfile {
            label: "+M,C,P",
            backend: make::<Mqx<Portable, profiles::McpFunctional>>(
                "mqx+MCP-func",
                Tier::Mqx,
                true,
            ),
        },
    ]
}

/// One Table 5/6 PISA-validation pair: the unmodified backend and the
/// same engine with one real instruction swapped for its PISA proxy.
pub struct ProxyPair {
    /// The real (target) instruction being modeled.
    pub target: &'static str,
    /// The proxy instruction PISA substitutes for it.
    pub proxy: &'static str,
    /// The ground-truth backend.
    pub target_backend: Arc<dyn Backend>,
    /// The proxied backend (non-consumable: wrong numbers by design).
    pub proxy_backend: Arc<dyn Backend>,
}

/// The Table 5/6 validation set for this host: each detected hardware
/// tier paired with its proxy-substituted twin, or the portable
/// methodology check when no vector hardware is present.
///
/// Target backends are the memoized registry instances (stable
/// `Arc::ptr_eq` identity with [`by_name`]); only the proxy twins —
/// deliberately-wrong engines that never belong in the registry — are
/// minted per call.
pub fn pisa_proxy_pairs() -> Vec<ProxyPair> {
    let mut pairs = Vec::new();

    #[cfg(target_arch = "x86_64")]
    {
        if mqx_simd::avx2_detected() {
            let avx2 = by_name("avx2").expect("detected ⇒ registered");
            pairs.push(ProxyPair {
                target: "_mm256_mul_epu32",
                proxy: "_mm256_mullo_epi32",
                target_backend: avx2,
                proxy_backend: make::<proxy::ProxyMul32<Avx2>>(
                    "avx2-proxy-mul32",
                    Tier::Avx2,
                    false,
                ),
            });
        }
        if mqx_simd::avx512_detected() {
            let avx512 = by_name("avx512").expect("detected ⇒ registered");
            pairs.push(ProxyPair {
                target: "_mm512_mask_add_epi64",
                proxy: "_mm512_add_epi64",
                target_backend: Arc::clone(&avx512),
                proxy_backend: make::<proxy::ProxyMaskAdd<Avx512>>(
                    "avx512-proxy-mask-add",
                    Tier::Avx512,
                    false,
                ),
            });
            pairs.push(ProxyPair {
                target: "_mm512_mask_sub_epi64",
                proxy: "_mm512_sub_epi64",
                target_backend: avx512,
                proxy_backend: make::<proxy::ProxyMaskSub<Avx512>>(
                    "avx512-proxy-mask-sub",
                    Tier::Avx512,
                    false,
                ),
            });
        }
    }

    if pairs.is_empty() {
        // No vector hardware: validate the methodology on the portable
        // engine (the proxies still swap real work for different work).
        let portable = by_name("portable").expect("portable is always registered");
        pairs.push(ProxyPair {
            target: "mul32_wide (portable)",
            proxy: "mullo32 (portable)",
            target_backend: Arc::clone(&portable),
            proxy_backend: make::<proxy::ProxyMul32<Portable>>(
                "portable-proxy-mul32",
                Tier::Portable,
                false,
            ),
        });
        pairs.push(ProxyPair {
            target: "mask_add (portable)",
            proxy: "add (portable)",
            target_backend: Arc::clone(&portable),
            proxy_backend: make::<proxy::ProxyMaskAdd<Portable>>(
                "portable-proxy-mask-add",
                Tier::Portable,
                false,
            ),
        });
        pairs.push(ProxyPair {
            target: "mask_sub (portable)",
            proxy: "sub (portable)",
            target_backend: portable,
            proxy_backend: make::<proxy::ProxyMaskSub<Portable>>(
                "portable-proxy-mask-sub",
                Tier::Portable,
                false,
            ),
        });
    }

    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqx_core::primes;

    #[test]
    fn registry_always_offers_portable_and_mqx() {
        let names = names();
        assert!(names.contains(&"portable"), "{names:?}");
        assert!(names.contains(&"mqx-functional"), "{names:?}");
        assert!(names.contains(&"mqx-pisa"), "{names:?}");
        // Registry names are unique.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "{names:?}");
    }

    #[test]
    fn hardware_tiers_follow_runtime_detection() {
        let names = names();
        assert_eq!(
            names.contains(&"avx512"),
            mqx_simd::avx512_detected(),
            "avx512 presence must track runtime detection"
        );
        assert_eq!(names.contains(&"avx2"), mqx_simd::avx2_detected());
    }

    #[test]
    fn default_backend_is_fastest_compiled_and_detected_tier() {
        let d = default_backend();
        assert!(d.consumable());
        assert_ne!(d.tier(), Tier::Mqx);
        // Hardware tiers are auto-selected only when the build can
        // inline them (compiled) AND the host can execute them
        // (detected); otherwise portable wins on measured speed.
        let expected = if mqx_simd::avx512_detected() && mqx_simd::avx512_compiled() {
            "avx512"
        } else if mqx_simd::avx2_detected() && mqx_simd::avx2_compiled() {
            "avx2"
        } else {
            "portable"
        };
        assert_eq!(d.name(), expected);
    }

    #[test]
    fn pisa_is_flagged_non_consumable() {
        let pisa = by_name("mqx-pisa").unwrap();
        assert!(!pisa.consumable());
        assert_eq!(pisa.tier(), Tier::Mqx);
        let functional = by_name("mqx-functional").unwrap();
        assert!(functional.consumable());
    }

    #[test]
    fn every_backend_does_elementwise_arithmetic() {
        let m = Modulus::new(primes::Q124).unwrap();
        let q = m.value();
        let x = ResidueSoa::from_u128s(&[q - 1, 1, 2, 3, 4, 5, 6, 7]);
        let y = ResidueSoa::from_u128s(&[2, q - 1, 2, 3, 4, 5, 6, 7]);
        for b in available() {
            let mut out = ResidueSoa::zeros(8);
            b.vadd(&x, &y, &mut out, &m);
            if b.consumable() {
                assert_eq!(out.get(0), 1, "{} vadd wrap", b.name());
                assert_eq!(out.get(2), 4, "{} vadd", b.name());
            }
            assert!(b.lanes() >= 1, "{}", b.name());
        }
    }

    #[test]
    fn ablation_set_matches_figure6() {
        let set = ablation_variants();
        let labels: Vec<_> = set.iter().map(|v| v.label).collect();
        assert_eq!(labels, ["Base", "+M", "+C", "+M,C", "+Mh,C", "+M,C,P"]);
        assert!(set[0].backend.consumable(), "Base is a real engine");
        assert!(set[1..].iter().all(|v| !v.backend.consumable()));
    }

    #[test]
    fn proxy_pairs_are_nonempty_and_non_consumable() {
        let pairs = pisa_proxy_pairs();
        assert!(!pairs.is_empty());
        for p in &pairs {
            assert!(p.target_backend.consumable(), "{}", p.target);
            assert!(!p.proxy_backend.consumable(), "{}", p.proxy);
        }
    }

    #[test]
    fn dyn_backend_inherent_available_matches_free_fn() {
        let a: Vec<_> = <dyn Backend>::available()
            .iter()
            .map(|b| b.name())
            .collect();
        assert_eq!(a, names());
    }

    #[test]
    fn registry_is_memoized_with_stable_identity() {
        let first = available();
        let second = available();
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert!(Arc::ptr_eq(a, b), "{} re-allocated", a.name());
        }
        // by_name and default_backend borrow the same instances.
        let portable = by_name("portable").unwrap();
        assert!(Arc::ptr_eq(&portable, &by_name("portable").unwrap()));
        let d = default_backend();
        assert!(Arc::ptr_eq(&d, &by_name(d.name()).unwrap()));
    }

    #[test]
    fn ablation_and_proxy_sets_reuse_registry_instances() {
        let set = ablation_variants();
        let base = &set[0].backend;
        assert!(
            Arc::ptr_eq(base, &by_name(base.name()).unwrap()),
            "Base must be the registry instance"
        );
        let mc = set.iter().find(|v| v.label == "+M,C").unwrap();
        assert!(
            Arc::ptr_eq(&mc.backend, &by_name("mqx-pisa").unwrap()),
            "+M,C must be the registry mqx-pisa"
        );
        for pair in pisa_proxy_pairs() {
            let registered = by_name(pair.target_backend.name())
                .expect("every proxy target is a registry backend");
            assert!(
                Arc::ptr_eq(&pair.target_backend, &registered),
                "{} target must be the registry instance",
                pair.target
            );
        }
    }

    #[test]
    fn selected_backend_is_consumable_and_never_mqx_without_a_pin() {
        let b = selected_backend().unwrap();
        // The selection is always consumable (non-consumable pins are
        // rejected with an error before this point).
        assert!(b.consumable());
        // The winner invariants only apply when no ambient MQX_BACKEND
        // pin was inherited from the environment (a documented knob —
        // e.g. MQX_BACKEND=mqx-functional is a legitimate MQX-tier
        // selection).
        match std::env::var("MQX_BACKEND") {
            Ok(pin) if !pin.is_empty() => assert_eq!(b.name(), pin),
            _ => {
                assert_ne!(b.tier(), Tier::Mqx);
                assert!(Arc::ptr_eq(&b, &calibration().winner()));
            }
        }
    }
}
