//! [`OpGraph`]: dependency graphs of [`RingOp`] nodes — the request
//! shape that lets the executor keep a chain's residues *resident*
//! instead of CRT-recombining between ops.
//!
//! PR 6 taught the executor the single-op vocabulary; this module turns
//! "one op per request" into "one dependency graph per request". A graph
//! names external **inputs** (operands the caller supplies as
//! [`Coefficients`](crate::Coefficients)), **nodes** (one [`RingOp`]
//! each, wired to inputs or to earlier nodes), and one **output** node
//! whose result is the request's product. Between nodes nothing is ever
//! recombined: every intermediate stays channel-major residues, and the
//! single CRT join runs once, at the output — the data-movement saving
//! the source paper attributes to fused composite kernels.
//!
//! Validation happens at build, not inside a worker: arity per node,
//! operand references (no dangling edges, no cycles — [`from_parts`]
//! topologically sorts arbitrary node orders and rejects cyclic ones),
//! channel-count flow through the basis-changing ops (both operands of a
//! binary node must sit in the same basis), and reachability (every
//! non-output node must feed the output — a dead node would burn worker
//! time for an unobservable result).
//!
//! [`from_parts`]: OpGraph::from_parts
//!
//! # Composite kernels
//!
//! The canned builders construct the two composites real schemes lean
//! on:
//!
//! * [`OpGraph::relinearize`] — polymul → basis-extend → rescale, the
//!   keyswitching/relinearization shape (raise the product into an
//!   extended basis, scale the extension back out);
//! * [`OpGraph::multiply_accumulate`] — `Σᵢ aᵢ·bᵢ` as a polymul fan-in
//!   chained through adds, the inner-product shape.
//!
//! ```
//! use mqx::{OpGraph, Operand, PolyOp, PolyRing, RingOp, RnsRing};
//! use mqx::bignum::BigUint;
//!
//! // (a·b + c) by hand: two inputs into a polymul, one into an add.
//! let mut g = OpGraph::builder(3);
//! let ab = g.polymul(PolyOp::Negacyclic, Operand::Input(0), Operand::Input(1))?;
//! let sum = g.add(ab, Operand::Input(2))?;
//! let graph = g.build(sum)?;
//! assert_eq!((graph.inputs(), graph.len()), (3, 2));
//!
//! // Evaluate it sequentially (the executor runs the same graph
//! // fanned out across workers).
//! let ring = RnsRing::auto(2, 64)?;
//! let x: Vec<BigUint> = (0..64_u64).map(BigUint::from).collect();
//! let ops: Vec<_> = (0..3).map(|_| x.clone().into()).collect();
//! let out = ring.apply_graph(&graph, &ops)?;
//! assert_eq!(out.len(), 64);
//! # Ok::<(), mqx::Error>(())
//! ```

use crate::error::Error;
use crate::ops::RingOp;
use crate::poly::PolyOp;
use std::fmt;

/// Where one node operand comes from: an external graph input or the
/// output of an earlier node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The `i`-th external operand submitted with the request.
    Input(usize),
    /// The output of graph node `j`.
    Node(usize),
}

/// One node of an [`OpGraph`]: a [`RingOp`] and the operand edges
/// feeding it (exactly [`RingOp::arity`] of them).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphNode {
    op: RingOp,
    operands: Vec<Operand>,
}

impl GraphNode {
    /// The node's operation.
    pub fn op(&self) -> &RingOp {
        &self.op
    }

    /// The node's operand edges, in argument order.
    pub fn operands(&self) -> &[Operand] {
        &self.operands
    }
}

/// A validated dependency graph of ring operations: the unit of work a
/// [`RingExecutor`](crate::RingExecutor) schedules with resident
/// residues.
///
/// Nodes are stored in a topological order (every operand references an
/// input or a *lower-indexed* node), so sequential evaluation is a plain
/// forward walk and the executor's indegree countdown never deadlocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpGraph {
    inputs: usize,
    nodes: Vec<GraphNode>,
    output: usize,
}

impl fmt::Display for OpGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "op-graph({} inputs, {} nodes -> {})",
            self.inputs,
            self.nodes.len(),
            self.nodes[self.output].op
        )
    }
}

impl OpGraph {
    /// Starts building a graph over `inputs` external operands.
    pub fn builder(inputs: usize) -> OpGraphBuilder {
        OpGraphBuilder {
            inputs,
            nodes: Vec::new(),
        }
    }

    /// The single-node graph of `op` over its own arity of fresh inputs
    /// — the shape every pre-graph [`RingRequest`](crate::RingRequest)
    /// compiles to, preserving today's one-op behavior exactly.
    pub fn single(op: RingOp) -> OpGraph {
        let arity = op.arity();
        OpGraph {
            inputs: arity,
            nodes: vec![GraphNode {
                op,
                operands: (0..arity).map(Operand::Input).collect(),
            }],
            output: 0,
        }
    }

    /// Builds a graph from raw parts, running the full validation:
    /// per-node arity, operand references, a topological sort (nodes may
    /// arrive in any order; cyclic graphs are rejected with
    /// [`Error::GraphCycle`]), symbolic channel-count flow through the
    /// basis-changing ops, and reachability of every node from `output`.
    ///
    /// On success the nodes are stored topologically sorted; `output`
    /// and all operand references are remapped accordingly.
    ///
    /// # Errors
    ///
    /// [`Error::GraphCycle`] when no topological order exists;
    /// [`Error::InvalidGraph`] for an empty graph, a dangling operand or
    /// output reference, an unused node, or binary operands whose bases
    /// cannot match; [`Error::OperandCountMismatch`] when a node's
    /// operand count differs from its op's arity.
    pub fn from_parts(
        inputs: usize,
        nodes: Vec<(RingOp, Vec<Operand>)>,
        output: usize,
    ) -> Result<OpGraph, Error> {
        if nodes.is_empty() {
            return Err(Error::InvalidGraph {
                node: 0,
                reason: "an op graph needs at least one node",
            });
        }
        if output >= nodes.len() {
            return Err(Error::InvalidGraph {
                node: output,
                reason: "output references a node the graph does not contain",
            });
        }
        for (id, (op, operands)) in nodes.iter().enumerate() {
            if operands.len() != op.arity() {
                return Err(Error::OperandCountMismatch {
                    op: op.name(),
                    expected: op.arity(),
                    got: operands.len(),
                });
            }
            for operand in operands {
                match *operand {
                    Operand::Input(i) if i >= inputs => {
                        return Err(Error::InvalidGraph {
                            node: id,
                            reason: "operand references an input the graph does not declare",
                        });
                    }
                    Operand::Node(j) if j >= nodes.len() => {
                        return Err(Error::InvalidGraph {
                            node: id,
                            reason: "operand references a node the graph does not contain",
                        });
                    }
                    _ => {}
                }
            }
        }

        // Kahn's algorithm: nodes may be handed to us in any order, so
        // compute a topological order explicitly — a graph with no such
        // order has a cycle and can never be scheduled.
        let n = nodes.len();
        let mut indegree = vec![0_usize; n];
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, (_, operands)) in nodes.iter().enumerate() {
            for operand in operands {
                if let Operand::Node(j) = *operand {
                    indegree[id] += 1;
                    successors[j].push(id);
                }
            }
        }
        // Smallest-ready-id-first makes the order deterministic and the
        // identity for input that is already topologically sorted, so
        // node ids in errors match what the caller handed over.
        let mut queue: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
            .filter(|&id| indegree[id] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(id)) = queue.pop() {
            order.push(id);
            for &s in &successors[id] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push(std::cmp::Reverse(s));
                }
            }
        }
        if order.len() != n {
            return Err(Error::GraphCycle);
        }
        // Remap ids to the topological order so the stored graph is a
        // forward walk.
        let mut position = vec![0_usize; n];
        for (pos, &id) in order.iter().enumerate() {
            position[id] = pos;
        }
        let mut sorted: Vec<Option<GraphNode>> = (0..n).map(|_| None).collect();
        for (id, (op, operands)) in nodes.into_iter().enumerate() {
            let operands = operands
                .into_iter()
                .map(|operand| match operand {
                    Operand::Node(j) => Operand::Node(position[j]),
                    input => input,
                })
                .collect();
            sorted[position[id]] = Some(GraphNode { op, operands });
        }
        let nodes: Vec<GraphNode> = sorted.into_iter().flatten().collect();
        let graph = OpGraph {
            inputs,
            nodes,
            output: position[output],
        };
        graph.validate_flow()?;
        graph.validate_reachability()?;
        Ok(graph)
    }

    /// The relinearization/keyswitching composite: `polymul(in₀, in₁)` →
    /// `basis-extend` by `extra_channels` → `rescale` (dropping the last
    /// extension prime back out). Two inputs, one output, exactly one
    /// CRT join when executed.
    ///
    /// # Panics
    ///
    /// Never for `extra_channels ≥ 1`; a zero extension is rejected at
    /// submit by the ring, like the standalone op.
    pub fn relinearize(op: PolyOp, extra_channels: usize) -> OpGraph {
        let mut g = OpGraph::builder(2);
        let steps = (|| {
            let product = g.polymul(op, Operand::Input(0), Operand::Input(1))?;
            let raised = g.basis_extend(product, extra_channels)?;
            let scaled = g.rescale(raised)?;
            g.build(scaled)
        })();
        steps.expect("the relinearize chain is statically valid")
    }

    /// The inner-product composite `Σᵢ aᵢ·bᵢ` over `terms` operand
    /// pairs: inputs are interleaved `[a₀, b₀, a₁, b₁, …]`, the partial
    /// products fold through a chain of adds, and the whole sum is one
    /// request with one CRT join.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidGraph`] for `terms == 0`.
    pub fn multiply_accumulate(op: PolyOp, terms: usize) -> Result<OpGraph, Error> {
        if terms == 0 {
            return Err(Error::InvalidGraph {
                node: 0,
                reason: "a multiply-accumulate needs at least one operand pair",
            });
        }
        let mut g = OpGraph::builder(2 * terms);
        let mut acc = g.polymul(op, Operand::Input(0), Operand::Input(1))?;
        for term in 1..terms {
            let product = g.polymul(op, Operand::Input(2 * term), Operand::Input(2 * term + 1))?;
            acc = g.add(acc, product)?;
        }
        g.build(acc)
    }

    /// Number of external operands the graph consumes.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes (never true for a validated
    /// graph).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes, in topological order.
    pub fn nodes(&self) -> &[GraphNode] {
        &self.nodes
    }

    /// Index of the output node.
    pub fn output(&self) -> usize {
        self.output
    }

    /// The output node's op — what the request "is" at its root (a
    /// single-node graph's only op).
    pub fn output_op(&self) -> &RingOp {
        &self.nodes[self.output].op
    }

    /// Symbolic channel-count flow: each node's basis, tracked as a
    /// signed delta against the ring's native width (`Rescale` −1,
    /// `BasisExtend` +extra). Binary nodes must combine operands with
    /// equal deltas — with bases forming a prefix chain (extend appends,
    /// rescale drops from the end), equal width means equal basis.
    fn validate_flow(&self) -> Result<(), Error> {
        let mut delta = vec![0_i64; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            let operand_delta = |operand: &Operand| match *operand {
                Operand::Input(_) => 0,
                Operand::Node(j) => delta[j],
            };
            let first = node.operands.first().map_or(0, operand_delta);
            if node.operands.iter().any(|o| operand_delta(o) != first) {
                return Err(Error::InvalidGraph {
                    node: id,
                    reason: "binary operands sit in different bases (unequal channel counts)",
                });
            }
            delta[id] = match node.op {
                RingOp::Rescale => first - 1,
                RingOp::BasisExtend { extra_channels } => first + extra_channels as i64,
                _ => first,
            };
        }
        Ok(())
    }

    /// Every non-output node must be an ancestor of the output: an
    /// unreachable node would run kernels whose result nobody observes.
    /// (A corollary: the output node itself can have no successors, so
    /// its completion is the whole graph's completion.)
    fn validate_reachability(&self) -> Result<(), Error> {
        let mut used = vec![false; self.nodes.len()];
        used[self.output] = true;
        // Nodes are topologically sorted, so one reverse sweep settles
        // reachability.
        for id in (0..self.nodes.len()).rev() {
            if !used[id] {
                return Err(Error::InvalidGraph {
                    node: id,
                    reason: "node does not feed the output (dead intermediate)",
                });
            }
            for operand in &self.nodes[id].operands {
                if let Operand::Node(j) = *operand {
                    used[j] = true;
                }
            }
        }
        Ok(())
    }

    /// Resolves each node's input/output channel widths on a ring with
    /// `channels` native channels, consulting `out_width(op, in_width)`
    /// (i.e. [`PolyRing::op_output_channels_at`]) per node — the
    /// ring-specific half of validation, run at submit.
    ///
    /// [`PolyRing::op_output_channels_at`]: crate::PolyRing::op_output_channels_at
    pub(crate) fn plan_widths(
        &self,
        channels: usize,
        mut out_width: impl FnMut(&RingOp, usize) -> Result<usize, Error>,
    ) -> Result<Vec<NodeWidths>, Error> {
        let mut plan: Vec<NodeWidths> = Vec::with_capacity(self.nodes.len());
        for (id, node) in self.nodes.iter().enumerate() {
            let width_of = |operand: &Operand| match *operand {
                Operand::Input(_) => channels,
                Operand::Node(j) => plan[j].output,
            };
            let input = node.operands.first().map_or(channels, width_of);
            if node.operands.iter().any(|o| width_of(o) != input) {
                return Err(Error::InvalidGraph {
                    node: id,
                    reason: "binary operands sit in different bases (unequal channel counts)",
                });
            }
            let output = out_width(&node.op, input)?;
            plan.push(NodeWidths { input, output });
        }
        Ok(plan)
    }
}

/// Per-node channel widths resolved against a concrete ring (see
/// [`OpGraph::plan_widths`]).
#[derive(Clone, Copy, Debug)]
pub(crate) struct NodeWidths {
    /// Channel count of the node's operands.
    pub(crate) input: usize,
    /// Channel count of the node's result — the executor's fan-out
    /// width for the node.
    pub(crate) output: usize,
}

/// Incremental [`OpGraph`] construction: append nodes (each may only
/// reference inputs and already-appended nodes, so cycles are impossible
/// by construction), then [`build`](OpGraphBuilder::build) with the
/// output node.
#[derive(Clone, Debug)]
pub struct OpGraphBuilder {
    inputs: usize,
    nodes: Vec<(RingOp, Vec<Operand>)>,
}

impl OpGraphBuilder {
    /// Appends one node and returns the [`Operand`] naming its output.
    ///
    /// # Errors
    ///
    /// [`Error::OperandCountMismatch`] when `operands` does not match
    /// the op's arity; [`Error::InvalidGraph`] for a dangling operand
    /// (an undeclared input, or a node not yet appended — forward
    /// references are what [`OpGraph::from_parts`] is for).
    pub fn node(&mut self, op: RingOp, operands: Vec<Operand>) -> Result<Operand, Error> {
        let id = self.nodes.len();
        if operands.len() != op.arity() {
            return Err(Error::OperandCountMismatch {
                op: op.name(),
                expected: op.arity(),
                got: operands.len(),
            });
        }
        for operand in &operands {
            let dangling = match *operand {
                Operand::Input(i) => i >= self.inputs,
                Operand::Node(j) => j >= id,
            };
            if dangling {
                return Err(Error::InvalidGraph {
                    node: id,
                    reason: "operand references an input or node the builder has not seen",
                });
            }
        }
        self.nodes.push((op, operands));
        Ok(Operand::Node(id))
    }

    /// Appends a polynomial product node.
    ///
    /// # Errors
    ///
    /// See [`node`](OpGraphBuilder::node).
    pub fn polymul(&mut self, op: PolyOp, a: Operand, b: Operand) -> Result<Operand, Error> {
        self.node(RingOp::Polymul(op), vec![a, b])
    }

    /// Appends a coefficient-wise addition node.
    ///
    /// # Errors
    ///
    /// See [`node`](OpGraphBuilder::node).
    pub fn add(&mut self, a: Operand, b: Operand) -> Result<Operand, Error> {
        self.node(RingOp::Add, vec![a, b])
    }

    /// Appends a coefficient-wise subtraction node (`a − b`).
    ///
    /// # Errors
    ///
    /// See [`node`](OpGraphBuilder::node).
    pub fn sub(&mut self, a: Operand, b: Operand) -> Result<Operand, Error> {
        self.node(RingOp::Sub, vec![a, b])
    }

    /// Appends a modulus-rescale node (drop the basis's last channel,
    /// divide-and-round).
    ///
    /// # Errors
    ///
    /// See [`node`](OpGraphBuilder::node).
    pub fn rescale(&mut self, a: Operand) -> Result<Operand, Error> {
        self.node(RingOp::Rescale, vec![a])
    }

    /// Appends a basis-extension node (append `extra_channels` fresh
    /// coprime primes).
    ///
    /// # Errors
    ///
    /// See [`node`](OpGraphBuilder::node).
    pub fn basis_extend(&mut self, a: Operand, extra_channels: usize) -> Result<Operand, Error> {
        self.node(RingOp::BasisExtend { extra_channels }, vec![a])
    }

    /// Finishes the graph with `output` as its result node, running the
    /// full structural validation.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidGraph`] when `output` names an input rather than
    /// a node, plus everything [`OpGraph::from_parts`] rejects.
    pub fn build(self, output: Operand) -> Result<OpGraph, Error> {
        let Operand::Node(output) = output else {
            return Err(Error::InvalidGraph {
                node: 0,
                reason: "the output must be a node, not a passthrough of an input",
            });
        };
        OpGraph::from_parts(self.inputs, self.nodes, output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn polymul() -> RingOp {
        RingOp::Polymul(PolyOp::Cyclic)
    }

    #[test]
    fn builder_constructs_topological_graphs() {
        let mut g = OpGraph::builder(4);
        let p1 = g.polymul(PolyOp::Cyclic, Operand::Input(0), Operand::Input(1));
        let p1 = p1.unwrap();
        let p2 = g
            .polymul(PolyOp::Cyclic, Operand::Input(2), Operand::Input(3))
            .unwrap();
        let sum = g.add(p1, p2).unwrap();
        let graph = g.build(sum).unwrap();
        assert_eq!(graph.inputs(), 4);
        assert_eq!(graph.len(), 3);
        assert!(!graph.is_empty());
        assert_eq!(graph.output(), 2);
        assert_eq!(graph.output_op(), &RingOp::Add);
        assert_eq!(graph.nodes()[0].op(), &polymul());
        assert_eq!(
            graph.nodes()[2].operands(),
            &[Operand::Node(0), Operand::Node(1)]
        );
        assert!(graph.to_string().contains("3 nodes"));
    }

    #[test]
    fn single_matches_op_arity() {
        let g = OpGraph::single(RingOp::Rescale);
        assert_eq!((g.inputs(), g.len(), g.output()), (1, 1, 0));
        let g = OpGraph::single(RingOp::Add);
        assert_eq!(g.inputs(), 2);
        assert_eq!(
            g.nodes()[0].operands(),
            &[Operand::Input(0), Operand::Input(1)]
        );
    }

    #[test]
    fn arity_and_dangling_references_are_rejected() {
        let mut g = OpGraph::builder(1);
        assert!(matches!(
            g.node(RingOp::Add, vec![Operand::Input(0)]).unwrap_err(),
            Error::OperandCountMismatch {
                op: "add",
                expected: 2,
                got: 1
            }
        ));
        assert!(matches!(
            g.node(RingOp::Rescale, vec![Operand::Input(3)])
                .unwrap_err(),
            Error::InvalidGraph { node: 0, .. }
        ));
        assert!(matches!(
            g.node(RingOp::Rescale, vec![Operand::Node(0)]).unwrap_err(),
            Error::InvalidGraph { node: 0, .. }
        ));
        // Output must be a node.
        let mut g = OpGraph::builder(1);
        g.rescale(Operand::Input(0)).unwrap();
        assert!(matches!(
            g.build(Operand::Input(0)).unwrap_err(),
            Error::InvalidGraph { .. }
        ));
    }

    #[test]
    fn from_parts_sorts_any_order_and_rejects_cycles() {
        // Nodes handed over in reverse dependency order: add first,
        // then the polymul it consumes.
        let graph = OpGraph::from_parts(
            2,
            vec![
                (RingOp::Add, vec![Operand::Node(1), Operand::Node(1)]),
                (polymul(), vec![Operand::Input(0), Operand::Input(1)]),
            ],
            0,
        )
        .unwrap();
        assert_eq!(graph.nodes()[0].op(), &polymul());
        assert_eq!(graph.output(), 1);
        assert_eq!(
            graph.nodes()[1].operands(),
            &[Operand::Node(0), Operand::Node(0)]
        );

        // A two-node cycle has no topological order.
        assert!(matches!(
            OpGraph::from_parts(
                0,
                vec![
                    (RingOp::Rescale, vec![Operand::Node(1)]),
                    (RingOp::Rescale, vec![Operand::Node(0)]),
                ],
                0,
            )
            .unwrap_err(),
            Error::GraphCycle
        ));

        // Empty graphs and dangling outputs are structural errors.
        assert!(matches!(
            OpGraph::from_parts(1, vec![], 0).unwrap_err(),
            Error::InvalidGraph { .. }
        ));
        assert!(matches!(
            OpGraph::from_parts(1, vec![(RingOp::Rescale, vec![Operand::Input(0)])], 9)
                .unwrap_err(),
            Error::InvalidGraph { node: 9, .. }
        ));
    }

    #[test]
    fn channel_flow_mismatches_are_rejected_at_build() {
        // add(rescale(x), y): the rescaled arm dropped a channel, so the
        // operands can never sit in the same basis.
        let mut g = OpGraph::builder(2);
        let dropped = g.rescale(Operand::Input(0)).unwrap();
        assert!(matches!(
            g.add(dropped, Operand::Input(1))
                .map(|o| g.clone().build(o)),
            Ok(Err(Error::InvalidGraph { node: 1, .. }))
        ));

        // extend-then-rescale returns to the native width, so mixing
        // with a fresh input is fine.
        let mut g = OpGraph::builder(2);
        let raised = g.basis_extend(Operand::Input(0), 1).unwrap();
        let lowered = g.rescale(raised).unwrap();
        let sum = g.add(lowered, Operand::Input(1)).unwrap();
        assert!(g.build(sum).is_ok());
    }

    #[test]
    fn dead_nodes_are_rejected() {
        let mut g = OpGraph::builder(2);
        let used = g
            .polymul(PolyOp::Cyclic, Operand::Input(0), Operand::Input(1))
            .unwrap();
        let _dead = g.add(Operand::Input(0), Operand::Input(1)).unwrap();
        assert!(matches!(
            g.build(used).unwrap_err(),
            Error::InvalidGraph { node: 1, .. }
        ));
    }

    #[test]
    fn canned_builders_have_the_documented_shapes() {
        let relin = OpGraph::relinearize(PolyOp::Negacyclic, 2);
        assert_eq!((relin.inputs(), relin.len()), (2, 3));
        assert_eq!(relin.output_op(), &RingOp::Rescale);
        assert_eq!(
            relin.nodes()[1].op(),
            &RingOp::BasisExtend { extra_channels: 2 }
        );

        let mac = OpGraph::multiply_accumulate(PolyOp::Cyclic, 3).unwrap();
        // 3 polymuls + 2 adds, 6 inputs.
        assert_eq!((mac.inputs(), mac.len()), (6, 5));
        assert_eq!(mac.output_op(), &RingOp::Add);

        let single = OpGraph::multiply_accumulate(PolyOp::Cyclic, 1).unwrap();
        assert_eq!((single.inputs(), single.len()), (2, 1));
        assert!(matches!(
            OpGraph::multiply_accumulate(PolyOp::Cyclic, 0).unwrap_err(),
            Error::InvalidGraph { .. }
        ));
    }

    #[test]
    fn plan_widths_flows_through_basis_changes() {
        let relin = OpGraph::relinearize(PolyOp::Cyclic, 1);
        let plan = relin
            .plan_widths(3, |op, w| {
                Ok(match op {
                    RingOp::Rescale => w - 1,
                    RingOp::BasisExtend { extra_channels } => w + extra_channels,
                    _ => w,
                })
            })
            .unwrap();
        let widths: Vec<(usize, usize)> = plan.iter().map(|p| (p.input, p.output)).collect();
        assert_eq!(widths, vec![(3, 3), (3, 4), (4, 3)]);
    }
}
